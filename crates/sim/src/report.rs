//! The deterministic simulation report: integer-only counters whose
//! canonical JSON rendering is byte-identical for identical (seed, config)
//! pairs at every repair thread count — the golden-file and determinism
//! tests compare exactly this rendering.

use std::fmt;

use crate::assign::AssignPolicy;

/// Power-of-two latency histogram: bucket `k` counts completed tasks whose
/// latency `ℓ` (ticks from arrival to drop-off) satisfies
/// `2^k ≤ ℓ < 2^(k+1)`; the last bucket absorbs everything larger.
pub const LATENCY_BUCKETS: usize = 16;

/// Live simulation counters, all integers. The conservation invariant
/// `injected == completed + in_flight + queued` holds after every tick
/// (and is `debug_assert`ed there).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Ticks executed so far.
    pub ticks: u64,
    /// Tasks injected by the arrival stream.
    pub injected: u64,
    /// Tasks completed (delivered to a station).
    pub completed: u64,
    /// Tasks attached to a carried unit, not yet delivered.
    pub in_flight: u64,
    /// Tasks waiting in a product queue.
    pub queued: u64,
    /// Sum of completed-task latencies (completion tick − arrival tick).
    pub latency_sum: u64,
    /// Largest completed-task latency.
    pub latency_max: u64,
    /// Power-of-two latency histogram (see [`LATENCY_BUCKETS`]).
    pub latency_hist: [u64; LATENCY_BUCKETS],
    /// Agent moves executed (vertex changed).
    pub moves: u64,
    /// Agent wait ticks (stalled, blocked, or planned waits).
    pub waits: u64,
    /// Agent-ticks spent carrying a product.
    pub carrying_ticks: u64,
    /// Units delivered to stations (matched to a task or not).
    pub delivered: u64,
    /// Deliveries with no queued or attached task to absorb them.
    pub unmatched_deliveries: u64,
    /// Stall deviations injected.
    pub stalls_injected: u64,
    /// Total stall ticks injected.
    pub stall_ticks_injected: u64,
    /// Rolling-horizon replans (window boundaries + early replans).
    pub replans: u64,
    /// MAPF catch-up repairs attempted.
    pub repairs_attempted: u64,
    /// Repairs whose catch-up path was accepted and spliced in.
    pub repairs_applied: u64,
    /// Tasks explicitly matched to an agent by the auction dispatcher
    /// (`AssignPolicy::Auction` only; stays 0 under `Static`, where
    /// assignment is implicit in cycle execution).
    pub assignments_made: u64,
    /// Idle agents dispatched toward a station anchor by the auction's
    /// rebalance pass (`AssignPolicy::Auction` only).
    pub rebalance_moves: u64,
    /// Structural faults fired (breakdowns + outages + closures).
    /// Rendered only when fault injection is configured, like the
    /// assignment counters.
    pub faults_injected: u64,
    /// Tasks shed from a broken agent back to the queue (each shed task
    /// re-enters `queued` in arrival order, so conservation holds
    /// through the shed).
    pub tasks_shed: u64,
    /// Agents permanently lost to a no-recovery breakdown.
    pub agents_lost: u64,
    /// Largest agent lag (ticks behind the window plan) ever observed.
    pub max_lag: u64,
    /// Discrete events processed: task injections, stall firings, valid
    /// wake-ups and replan-lag crossing checks popped from the event
    /// queue, window replans (including the construction-time one), and
    /// completed catch-up detours. Identical under the event-driven and
    /// reference engines — the reference engine runs the same virtual
    /// scheduler bookkeeping.
    pub events_processed: u64,
    /// Ticks the event-driven engine skipped outright (every agent
    /// provably quiescent and nothing scheduled). The reference engine
    /// counts the ticks it *would* have skipped, so this too is
    /// byte-identical across engines; `ticks` always includes them.
    pub ticks_elided: u64,
    /// Sum over executed ticks of the number of awake agents — the work
    /// the grant pass actually did. `active_agent_ticks + waits_of_sleepers`
    /// style identities don't hold in general; compare against
    /// `agents × ticks` for the elision win.
    pub active_agent_ticks: u64,
}

impl SimCounters {
    /// Whether the task-conservation invariant holds right now.
    pub fn conserved(&self) -> bool {
        self.injected == self.completed + self.in_flight + self.queued
    }

    /// Records one completed task latency.
    pub(crate) fn record_latency(&mut self, latency: u64) {
        self.completed += 1;
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        let bucket = if latency == 0 {
            0
        } else {
            (63 - latency.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
        };
        self.latency_hist[bucket] += 1;
    }
}

/// The final report of a simulation run: configuration echo, the full
/// [`SimCounters`], and a trajectory checksum. Every field is an integer,
/// so [`to_json`](SimReport::to_json) is a canonical byte-exact rendering:
/// the determinism contract promises identical JSON for identical
/// (instance, config) inputs at any repair thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Agents simulated.
    pub agents: u64,
    /// Floorplan vertices of the instance.
    pub vertices: u64,
    /// Rolling-horizon window length (ticks).
    pub window: u64,
    /// Task-stream seed.
    pub stream_seed: u64,
    /// Deviation seed.
    pub deviation_seed: u64,
    /// The task-assignment policy the run executed. Only
    /// [`AssignPolicy::Auction`] reports render the assignment counters
    /// — [`AssignPolicy::Static`] renderings are bit-for-bit what they
    /// were before the assignment layer existed, which is what keeps the
    /// pre-existing golden files binding.
    pub policy: AssignPolicy,
    /// Whether fault injection was configured
    /// ([`FaultConfig::enabled`](crate::FaultConfig::enabled)). Only
    /// fault-injected reports render the fault counters — fault-free
    /// renderings are bit-for-bit what they were before the fault layer
    /// existed, which keeps the pre-existing golden files binding.
    pub faults: bool,
    /// Word-wise FNV-1a checksum over the initial configuration plus
    /// every executed *state change* `(tick, agent) → (vertex, carry)` —
    /// two runs with equal checksums executed identical trajectories
    /// without either run recording them. Change-based rather than
    /// per-tick, so a quiescent tick contributes nothing and the
    /// event-driven engine can skip it without perturbing the digest.
    pub trajectory_checksum: u64,
    /// The final counters.
    pub counters: SimCounters,
}

impl SimReport {
    /// Mean task latency in milliticks (`1000 × latency_sum / completed`),
    /// `0` when nothing completed. Integer, so usable as a deterministic
    /// scoring axis (`wsp-explore` minimizes it on its Pareto front).
    pub fn mean_latency_milliticks(&self) -> u64 {
        (self.counters.latency_sum * 1000)
            .checked_div(self.counters.completed)
            .unwrap_or(0)
    }

    /// Completed tasks per kilotick (`1000 × completed / ticks`), `0` for
    /// an empty run.
    pub fn throughput_per_kilotick(&self) -> u64 {
        (self.counters.completed * 1000)
            .checked_div(self.counters.ticks)
            .unwrap_or(0)
    }

    /// Share of agent-ticks spent carrying, in parts per thousand.
    pub fn utilization_permille(&self) -> u64 {
        (self.counters.carrying_ticks * 1000)
            .checked_div(self.agents * self.counters.ticks)
            .unwrap_or(0)
    }

    /// The canonical JSON rendering: keys in fixed order, integers only,
    /// one key per line. This exact string is what the golden files under
    /// `tests/golden/` store and what the determinism tests compare.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.counters;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        fn field(out: &mut String, key: &str, value: u64, comma: bool) {
            let _ = writeln!(out, "  \"{key}\": {value}{}", if comma { "," } else { "" });
        }
        field(&mut out, "agents", self.agents, true);
        field(&mut out, "vertices", self.vertices, true);
        field(&mut out, "window", self.window, true);
        field(&mut out, "stream_seed", self.stream_seed, true);
        field(&mut out, "deviation_seed", self.deviation_seed, true);
        field(&mut out, "ticks", c.ticks, true);
        field(&mut out, "injected", c.injected, true);
        field(&mut out, "completed", c.completed, true);
        field(&mut out, "in_flight", c.in_flight, true);
        field(&mut out, "queued", c.queued, true);
        field(&mut out, "latency_sum", c.latency_sum, true);
        field(&mut out, "latency_max", c.latency_max, true);
        let mean = self.mean_latency_milliticks();
        field(&mut out, "mean_latency_milliticks", mean, true);
        let tput = self.throughput_per_kilotick();
        field(&mut out, "throughput_per_kilotick", tput, true);
        let util = self.utilization_permille();
        field(&mut out, "utilization_permille", util, true);
        field(&mut out, "moves", c.moves, true);
        field(&mut out, "waits", c.waits, true);
        field(&mut out, "carrying_ticks", c.carrying_ticks, true);
        field(&mut out, "delivered", c.delivered, true);
        field(
            &mut out,
            "unmatched_deliveries",
            c.unmatched_deliveries,
            true,
        );
        field(&mut out, "stalls_injected", c.stalls_injected, true);
        field(
            &mut out,
            "stall_ticks_injected",
            c.stall_ticks_injected,
            true,
        );
        field(&mut out, "replans", c.replans, true);
        field(&mut out, "repairs_attempted", c.repairs_attempted, true);
        field(&mut out, "repairs_applied", c.repairs_applied, true);
        if self.policy == AssignPolicy::Auction {
            field(&mut out, "assignments_made", c.assignments_made, true);
            field(&mut out, "rebalance_moves", c.rebalance_moves, true);
        }
        if self.faults {
            field(&mut out, "faults_injected", c.faults_injected, true);
            field(&mut out, "tasks_shed", c.tasks_shed, true);
            field(&mut out, "agents_lost", c.agents_lost, true);
        }
        field(&mut out, "max_lag", c.max_lag, true);
        field(&mut out, "events_processed", c.events_processed, true);
        field(&mut out, "ticks_elided", c.ticks_elided, true);
        field(&mut out, "active_agent_ticks", c.active_agent_ticks, true);
        let hist: Vec<String> = c.latency_hist.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(out, "  \"latency_hist\": [{}],", hist.join(", "));
        field(
            &mut out,
            "trajectory_checksum",
            self.trajectory_checksum,
            false,
        );
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        write!(
            f,
            "{} ticks, {} agents: {}/{} tasks done ({} queued, {} in flight), \
             mean latency {:.1} ticks, max {}, utilization {:.1}%, \
             {} replans, {}/{} repairs",
            c.ticks,
            self.agents,
            c.completed,
            c.injected,
            c.queued,
            c.in_flight,
            self.mean_latency_milliticks() as f64 / 1000.0,
            c.latency_max,
            self.utilization_permille() as f64 / 10.0,
            c.replans,
            c.repairs_applied,
            c.repairs_attempted,
        )
    }
}

/// Incremental word-wise FNV-1a trajectory checksum: one xor-multiply
/// round per `u64`, so a checksummed word costs a couple of cycles
/// instead of eight byte rounds. The engine feeds it the initial
/// configuration plus one `(tick, agent) → (vertex, carry)` pair per
/// *state change*, which is what lets fully quiescent ticks be elided
/// without perturbing the digest.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        let mut counters = SimCounters {
            ticks: 100,
            injected: 10,
            in_flight: 1,
            queued: 2,
            moves: 400,
            waits: 100,
            carrying_ticks: 250,
            delivered: 9,
            ..SimCounters::default()
        };
        for latency in [1u64, 3, 3, 9, 20, 80, 300] {
            counters.record_latency(latency);
        }
        SimReport {
            agents: 5,
            vertices: 64,
            window: 32,
            stream_seed: 7,
            deviation_seed: 9,
            policy: AssignPolicy::Static,
            faults: false,
            trajectory_checksum: 0xdead_beef,
            counters,
        }
    }

    #[test]
    fn conservation_checks_the_three_way_split() {
        let report = sample();
        assert!(report.counters.conserved());
        let mut broken = report.counters.clone();
        broken.queued += 1;
        assert!(!broken.conserved());
    }

    #[test]
    fn derived_metrics_are_integer_and_stable() {
        let r = sample();
        assert_eq!(r.counters.completed, 7);
        assert_eq!(r.counters.latency_sum, 1 + 3 + 3 + 9 + 20 + 80 + 300);
        assert_eq!(r.counters.latency_max, 300);
        assert_eq!(r.mean_latency_milliticks(), 416 * 1000 / 7);
        assert_eq!(r.throughput_per_kilotick(), 70);
        assert_eq!(r.utilization_permille(), 500);
        // Histogram: 1→b0, 3,3→b1, 9→b3, 20→b4, 80→b6, 300→b8.
        assert_eq!(r.counters.latency_hist[0], 1);
        assert_eq!(r.counters.latency_hist[1], 2);
        assert_eq!(r.counters.latency_hist[3], 1);
        assert_eq!(r.counters.latency_hist[4], 1);
        assert_eq!(r.counters.latency_hist[6], 1);
        assert_eq!(r.counters.latency_hist[8], 1);
    }

    #[test]
    fn json_is_canonical_and_roundtrips_equality() {
        let a = sample();
        let b = sample();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"injected\": 10,"));
        assert!(a.to_json().contains("\"trajectory_checksum\": 3735928559"));
        let mut c = sample();
        c.counters.moves += 1;
        assert_ne!(a.to_json(), c.to_json());
    }

    #[test]
    fn assignment_counters_render_only_under_auction() {
        let stat = sample();
        assert!(!stat.to_json().contains("assignments_made"));
        assert!(!stat.to_json().contains("rebalance_moves"));
        let mut auc = sample();
        auc.policy = AssignPolicy::Auction;
        auc.counters.assignments_made = 5;
        auc.counters.rebalance_moves = 2;
        assert!(auc.to_json().contains("\"assignments_made\": 5,"));
        assert!(auc.to_json().contains("\"rebalance_moves\": 2,"));
        // The shared prefix up to `repairs_applied` is unchanged.
        let prefix = stat
            .to_json()
            .split("\"repairs_applied\"")
            .next()
            .expect("prefix")
            .to_string();
        assert!(auc.to_json().starts_with(&prefix));
    }

    #[test]
    fn fault_counters_render_only_when_faults_enabled() {
        let clean = sample();
        assert!(!clean.to_json().contains("faults_injected"));
        assert!(!clean.to_json().contains("tasks_shed"));
        assert!(!clean.to_json().contains("agents_lost"));
        let mut chaos = sample();
        chaos.faults = true;
        chaos.counters.faults_injected = 7;
        chaos.counters.tasks_shed = 3;
        chaos.counters.agents_lost = 1;
        let json = chaos.to_json();
        assert!(json.contains("\"faults_injected\": 7,"));
        assert!(json.contains("\"tasks_shed\": 3,"));
        assert!(json.contains("\"agents_lost\": 1,"));
        // Fault counters sit between the (optional) assignment block and
        // `max_lag`; the prefix before them is byte-unchanged.
        let prefix = clean
            .to_json()
            .split("\"max_lag\"")
            .next()
            .expect("prefix")
            .to_string();
        assert!(json.starts_with(&prefix));
        // And the suffix from `max_lag` on is byte-unchanged too.
        let suffix = format!(
            "\"max_lag\"{}",
            clean.to_json().split("\"max_lag\"").nth(1).expect("suffix")
        );
        assert!(json.ends_with(&suffix));
    }
}
