//! Seeded execution deviations: agent stalls (a robot freezing in place
//! for a few ticks — a dropped package, a localization hiccup, a manual
//! stop). The schedule is a pure function of `(config, agent_count)`,
//! independent of how the simulation unfolds, so deviation runs are as
//! reproducible as clean ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the stall-deviation process.
#[derive(Debug, Clone)]
pub struct DeviationConfig {
    /// Mean ticks between stall events across the whole team (`0`
    /// disables deviations). Each gap is drawn uniformly from
    /// `1 ..= 2 × mean_gap − 1`.
    pub mean_gap: u32,
    /// Minimum stall duration (ticks).
    pub min_ticks: u32,
    /// Maximum stall duration (ticks).
    pub max_ticks: u32,
    /// Seed for event times, victims, and durations.
    pub seed: u64,
}

impl Default for DeviationConfig {
    fn default() -> Self {
        DeviationConfig {
            mean_gap: 0,
            min_ticks: 2,
            max_ticks: 8,
            seed: 0xdead,
        }
    }
}

impl DeviationConfig {
    /// A disabled schedule (the default): no deviations ever fire.
    pub fn none() -> Self {
        DeviationConfig::default()
    }

    /// Stalls of `min ..= max` ticks roughly every `mean_gap` ticks.
    pub fn stalls(mean_gap: u32, min_ticks: u32, max_ticks: u32, seed: u64) -> Self {
        DeviationConfig {
            mean_gap,
            min_ticks: min_ticks.min(max_ticks),
            max_ticks: max_ticks.max(min_ticks),
            seed,
        }
    }
}

/// One scheduled stall: `agent` freezes for `ticks` starting at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// Tick the stall begins.
    pub at: u64,
    /// The frozen agent.
    pub agent: usize,
    /// Stall length in ticks.
    pub ticks: u32,
}

/// The lazy, seed-deterministic stall schedule.
#[derive(Debug, Clone)]
pub struct DeviationSchedule {
    rng: StdRng,
    config: DeviationConfig,
    agents: usize,
    next: Option<Stall>,
}

impl DeviationSchedule {
    /// Builds the schedule for a team of `agents`.
    pub fn new(config: &DeviationConfig, agents: usize) -> Self {
        let mut schedule = DeviationSchedule {
            rng: StdRng::seed_from_u64(config.seed),
            config: config.clone(),
            agents,
            next: None,
        };
        schedule.next = schedule.draw(0);
        schedule
    }

    fn draw(&mut self, after: u64) -> Option<Stall> {
        if self.config.mean_gap == 0 || self.agents == 0 {
            return None;
        }
        // gap ∈ [1, 2 × mean_gap − 1], mean ≈ mean_gap.
        let gap = self.rng.gen_range(1..2 * u64::from(self.config.mean_gap));
        let agent = self.rng.gen_range(0..self.agents as u64) as usize;
        let ticks = self
            .rng
            .gen_range(u64::from(self.config.min_ticks)..u64::from(self.config.max_ticks) + 1)
            as u32;
        Some(Stall {
            at: after + gap,
            agent,
            ticks,
        })
    }

    /// Tick of the next scheduled stall, if any — the event-driven
    /// engine's "next deviation event" lookahead. Pure peek: the schedule
    /// is a function of `(config, agents)` alone, so peeking never
    /// perturbs it.
    pub fn next_fire(&self) -> Option<u64> {
        self.next.map(|s| s.at)
    }

    /// Pops every stall firing at or before tick `t` (call with
    /// monotonically increasing `t`).
    pub fn fire_at(&mut self, t: u64, mut apply: impl FnMut(Stall)) {
        while let Some(stall) = self.next {
            if stall.at > t {
                break;
            }
            apply(stall);
            self.next = self.draw(stall.at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(config: &DeviationConfig, agents: usize, horizon: u64) -> Vec<Stall> {
        let mut schedule = DeviationSchedule::new(config, agents);
        let mut out = Vec::new();
        for t in 0..horizon {
            schedule.fire_at(t, |s| out.push(s));
        }
        out
    }

    #[test]
    fn disabled_schedule_never_fires() {
        assert!(collect(&DeviationConfig::none(), 8, 1000).is_empty());
        assert!(collect(&DeviationConfig::stalls(10, 2, 4, 1), 0, 1000).is_empty());
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let config = DeviationConfig::stalls(10, 2, 6, 42);
        let a = collect(&config, 8, 500);
        let b = collect(&config, 8, 500);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = collect(&DeviationConfig::stalls(10, 2, 6, 43), 8, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn stalls_respect_bounds_and_density() {
        let config = DeviationConfig::stalls(20, 3, 5, 7);
        let stalls = collect(&config, 4, 2_000);
        for s in &stalls {
            assert!((3..=5).contains(&s.ticks));
            assert!(s.agent < 4);
        }
        // Mean gap 20 over 2000 ticks: roughly 100 events; accept wide
        // bounds (the uniform-gap process is noisy).
        assert!(stalls.len() > 40, "{} stalls", stalls.len());
        assert!(stalls.len() < 250, "{} stalls", stalls.len());
    }
}
