//! Seeded execution deviations and faults.
//!
//! Two escalating layers of scheduled adversity, both pure functions of
//! their config (independent of how the simulation unfolds, so chaos
//! runs are as reproducible as clean ones):
//!
//! * **Deviations** ([`DeviationSchedule`]): agent stalls — a robot
//!   freezing in place for a few ticks (a dropped package, a
//!   localization hiccup, a manual stop).
//! * **Faults** ([`FaultSchedule`]): structural failures — agent
//!   breakdowns (temporary or permanent), station outages, and corridor
//!   closures, each an independent seeded stream merged into one
//!   time-ordered feed of [`FaultEvent`]s.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel expiry for faults that never recover (permanent breakdowns).
pub const NEVER: u64 = u64::MAX;

/// Normalizes a `(min, max)` tick-span pair: reversed bounds are
/// swapped, so `(8, 2)` means the same span as `(2, 8)`. This is
/// documented behavior for every span-valued config pair in this module
/// ([`DeviationConfig::stalls`] and the `*_min_ticks`/`*_max_ticks`
/// fields of [`FaultConfig`]).
pub(crate) fn normalize_span(min_ticks: u32, max_ticks: u32) -> (u32, u32) {
    (min_ticks.min(max_ticks), max_ticks.max(min_ticks))
}

/// Configuration of the stall-deviation process.
#[derive(Debug, Clone)]
pub struct DeviationConfig {
    /// Mean ticks between stall events across the whole team (`0`
    /// disables deviations). Each gap is drawn uniformly from
    /// `1 ..= 2 × mean_gap − 1`.
    pub mean_gap: u32,
    /// Minimum stall duration (ticks).
    pub min_ticks: u32,
    /// Maximum stall duration (ticks).
    pub max_ticks: u32,
    /// Seed for event times, victims, and durations.
    pub seed: u64,
}

impl Default for DeviationConfig {
    fn default() -> Self {
        DeviationConfig {
            mean_gap: 0,
            min_ticks: 2,
            max_ticks: 8,
            seed: 0xdead,
        }
    }
}

impl DeviationConfig {
    /// A disabled schedule (the default): no deviations ever fire.
    pub fn none() -> Self {
        DeviationConfig::default()
    }

    /// Stalls of `min ..= max` ticks roughly every `mean_gap` ticks.
    /// Reversed bounds are normalized (`normalize_span`): passing
    /// `(8, 2)` is the same as `(2, 8)`.
    pub fn stalls(mean_gap: u32, min_ticks: u32, max_ticks: u32, seed: u64) -> Self {
        let (min_ticks, max_ticks) = normalize_span(min_ticks, max_ticks);
        DeviationConfig {
            mean_gap,
            min_ticks,
            max_ticks,
            seed,
        }
    }
}

/// One scheduled stall: `agent` freezes for `ticks` starting at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// Tick the stall begins.
    pub at: u64,
    /// The frozen agent.
    pub agent: usize,
    /// Stall length in ticks.
    pub ticks: u32,
}

/// The lazy, seed-deterministic stall schedule.
#[derive(Debug, Clone)]
pub struct DeviationSchedule {
    rng: StdRng,
    config: DeviationConfig,
    agents: usize,
    next: Option<Stall>,
}

impl DeviationSchedule {
    /// Builds the schedule for a team of `agents`.
    pub fn new(config: &DeviationConfig, agents: usize) -> Self {
        let mut schedule = DeviationSchedule {
            rng: StdRng::seed_from_u64(config.seed),
            config: config.clone(),
            agents,
            next: None,
        };
        schedule.next = schedule.draw(0);
        schedule
    }

    fn draw(&mut self, after: u64) -> Option<Stall> {
        if self.config.mean_gap == 0 || self.agents == 0 {
            return None;
        }
        // gap ∈ [1, 2 × mean_gap − 1], mean ≈ mean_gap.
        let gap = self.rng.gen_range(1..2 * u64::from(self.config.mean_gap));
        let agent = self.rng.gen_range(0..self.agents as u64) as usize;
        let ticks = self
            .rng
            .gen_range(u64::from(self.config.min_ticks)..u64::from(self.config.max_ticks) + 1)
            as u32;
        Some(Stall {
            at: after + gap,
            agent,
            ticks,
        })
    }

    /// Tick of the next scheduled stall, if any — the event-driven
    /// engine's "next deviation event" lookahead. Pure peek: the schedule
    /// is a function of `(config, agents)` alone, so peeking never
    /// perturbs it.
    pub fn next_fire(&self) -> Option<u64> {
        self.next.map(|s| s.at)
    }

    /// Pops every stall firing at or before tick `t` (call with
    /// monotonically increasing `t`).
    pub fn fire_at(&mut self, t: u64, mut apply: impl FnMut(Stall)) {
        while let Some(stall) = self.next {
            if stall.at > t {
                break;
            }
            apply(stall);
            self.next = self.draw(stall.at);
        }
    }
}

/// Configuration of the structural-fault process: three independent
/// seeded streams (breakdowns, outages, closures), each shaped exactly
/// like the stall process — a mean inter-event gap (`0` disables the
/// stream) plus a uniform duration span. Span pairs are normalized
/// (`normalize_span`): reversed bounds swap rather than panic.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Mean ticks between agent breakdowns (`0` disables breakdowns).
    pub breakdown_gap: u32,
    /// Minimum breakdown duration (ticks).
    pub breakdown_min_ticks: u32,
    /// Maximum breakdown duration (ticks).
    pub breakdown_max_ticks: u32,
    /// Out of each 1000 breakdowns, how many are permanent (the agent
    /// never recovers; its cell stays a static obstacle forever).
    pub permanent_permille: u32,
    /// Mean ticks between station outages (`0` disables outages).
    pub outage_gap: u32,
    /// Minimum outage duration (ticks).
    pub outage_min_ticks: u32,
    /// Maximum outage duration (ticks).
    pub outage_max_ticks: u32,
    /// Mean ticks between corridor closures (`0` disables closures).
    pub closure_gap: u32,
    /// Minimum closure duration (ticks).
    pub closure_min_ticks: u32,
    /// Maximum closure duration (ticks).
    pub closure_max_ticks: u32,
    /// Corridor length: the closure anchors at a seeded vertex and
    /// extends up to this many cells along a seeded axis.
    pub closure_len: u32,
    /// Seed for all three streams (each stream salts it differently, so
    /// the streams are independent but jointly reproducible).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            breakdown_gap: 0,
            breakdown_min_ticks: 50,
            breakdown_max_ticks: 200,
            permanent_permille: 0,
            outage_gap: 0,
            outage_min_ticks: 100,
            outage_max_ticks: 500,
            closure_gap: 0,
            closure_min_ticks: 50,
            closure_max_ticks: 200,
            closure_len: 4,
            seed: 0xfa17,
        }
    }
}

impl FaultConfig {
    /// A disabled schedule (the default): no faults ever fire.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// `true` when at least one fault stream is active.
    pub fn enabled(&self) -> bool {
        self.breakdown_gap > 0 || self.outage_gap > 0 || self.closure_gap > 0
    }

    /// The same config with every span pair normalized
    /// (`normalize_span`). [`FaultSchedule::new`] applies this, so
    /// reversed bounds behave identically everywhere.
    pub fn normalized(&self) -> Self {
        let mut c = *self;
        let (a, b) = normalize_span(c.breakdown_min_ticks, c.breakdown_max_ticks);
        c.breakdown_min_ticks = a;
        c.breakdown_max_ticks = b;
        let (a, b) = normalize_span(c.outage_min_ticks, c.outage_max_ticks);
        c.outage_min_ticks = a;
        c.outage_max_ticks = b;
        let (a, b) = normalize_span(c.closure_min_ticks, c.closure_max_ticks);
        c.closure_min_ticks = a;
        c.closure_max_ticks = b;
        c
    }
}

/// One scheduled structural fault. `until` is the first tick the
/// resource is available again ([`NEVER`] = no recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// `agent` goes offline at `at` until `until`; its queued/carried
    /// work is shed back to the task queue and its cell becomes a
    /// static obstacle.
    Breakdown {
        /// Tick the breakdown begins.
        at: u64,
        /// The broken agent.
        agent: usize,
        /// First tick the agent is back ([`NEVER`] = permanent loss).
        until: u64,
    },
    /// `station` goes dark at `at` until `until`; the auction stops
    /// bidding tasks to its sites, queued tasks wait.
    Outage {
        /// Tick the outage begins.
        at: u64,
        /// The dark station (index into the instance's station list).
        station: usize,
        /// First tick the station serves again.
        until: u64,
    },
    /// A corridor closes at `at` until `until`. The event carries a
    /// seeded anchor/axis; the engine expands it to the concrete vertex
    /// set deterministically from the graph.
    Closure {
        /// Tick the closure begins.
        at: u64,
        /// Seeded anchor vertex index (the engine clamps to the graph).
        anchor: usize,
        /// Seeded axis selector: even = row-wards, odd = column-wards.
        axis: u32,
        /// First tick the corridor reopens.
        until: u64,
    },
}

impl FaultEvent {
    /// Tick the fault fires.
    pub fn at(&self) -> u64 {
        match *self {
            FaultEvent::Breakdown { at, .. }
            | FaultEvent::Outage { at, .. }
            | FaultEvent::Closure { at, .. } => at,
        }
    }
}

/// One lazy seeded event stream: the common shape behind all three
/// fault kinds (mirrors `DeviationSchedule`'s draw discipline).
#[derive(Debug, Clone)]
struct FaultStream {
    rng: StdRng,
    gap: u32,
    min_ticks: u32,
    max_ticks: u32,
    population: usize,
    next: Option<(u64, usize, u64, u32)>, // (at, victim, until, extra)
    permanent_permille: u32,
}

impl FaultStream {
    fn new(
        seed: u64,
        gap: u32,
        min_ticks: u32,
        max_ticks: u32,
        population: usize,
        permanent_permille: u32,
    ) -> Self {
        let mut s = FaultStream {
            rng: StdRng::seed_from_u64(seed),
            gap,
            min_ticks,
            max_ticks,
            population,
            next: None,
            permanent_permille,
        };
        s.next = s.draw(0);
        s
    }

    fn draw(&mut self, after: u64) -> Option<(u64, usize, u64, u32)> {
        if self.gap == 0 || self.population == 0 {
            return None;
        }
        // Same shape as the stall process: gap ∈ [1, 2 × mean − 1],
        // victim uniform, span uniform min..=max. Draw order is fixed —
        // it is part of the determinism contract.
        let gap = self.rng.gen_range(1..2 * u64::from(self.gap));
        let victim = self.rng.gen_range(0..self.population as u64) as usize;
        let span = self
            .rng
            .gen_range(u64::from(self.min_ticks)..u64::from(self.max_ticks) + 1);
        let extra = self.rng.gen_range(0..1000u64) as u32;
        let at = after + gap;
        let until = if self.permanent_permille > 0 && extra < self.permanent_permille {
            NEVER
        } else {
            at + span.max(1)
        };
        Some((at, victim, until, extra))
    }

    fn pop_at(&mut self, t: u64) -> Option<(u64, usize, u64, u32)> {
        match self.next {
            Some(ev) if ev.0 <= t => {
                self.next = self.draw(ev.0);
                Some(ev)
            }
            _ => None,
        }
    }
}

/// The lazy, seed-deterministic fault schedule: three independent
/// streams (breakdowns over agents, outages over stations, closures
/// over vertices) merged into one feed. A pure function of
/// `(config, agents, stations, vertices)` — peeking never perturbs it.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    breakdowns: FaultStream,
    outages: FaultStream,
    closures: FaultStream,
}

impl FaultSchedule {
    /// Builds the schedule for a team of `agents`, `stations` induct
    /// stations, and a graph of `vertices` cells. The config's span
    /// pairs are normalized first ([`FaultConfig::normalized`]).
    pub fn new(config: &FaultConfig, agents: usize, stations: usize, vertices: usize) -> Self {
        let c = config.normalized();
        FaultSchedule {
            breakdowns: FaultStream::new(
                c.seed ^ BREAKDOWN_SALT,
                c.breakdown_gap,
                c.breakdown_min_ticks,
                c.breakdown_max_ticks,
                agents,
                c.permanent_permille,
            ),
            outages: FaultStream::new(
                c.seed ^ OUTAGE_SALT,
                c.outage_gap,
                c.outage_min_ticks,
                c.outage_max_ticks,
                stations,
                0,
            ),
            closures: FaultStream::new(
                c.seed ^ CLOSURE_SALT,
                c.closure_gap,
                c.closure_min_ticks,
                c.closure_max_ticks,
                vertices,
                0,
            ),
        }
    }

    /// Tick of the next scheduled fault of any kind, if any — the
    /// event-driven engine's forced-tick lookahead. Pure peek.
    pub fn next_fire(&self) -> Option<u64> {
        [&self.breakdowns, &self.outages, &self.closures]
            .iter()
            .filter_map(|s| s.next.map(|ev| ev.0))
            .min()
    }

    /// Pops every fault firing at or before tick `t` (call with
    /// monotonically increasing `t`). Events are delivered in a fixed
    /// order — all due breakdowns, then outages, then closures, each
    /// stream in time order — so both engines observe identical feeds.
    pub fn fire_at(&mut self, t: u64, mut apply: impl FnMut(FaultEvent)) {
        while let Some((at, agent, until, _)) = self.breakdowns.pop_at(t) {
            apply(FaultEvent::Breakdown { at, agent, until });
        }
        while let Some((at, station, until, _)) = self.outages.pop_at(t) {
            apply(FaultEvent::Outage { at, station, until });
        }
        while let Some((at, anchor, until, extra)) = self.closures.pop_at(t) {
            apply(FaultEvent::Closure {
                at,
                anchor,
                axis: extra,
                until,
            });
        }
    }
}

// Stream salts: fixed arbitrary constants keeping the three streams
// decorrelated under a shared seed.
const BREAKDOWN_SALT: u64 = 0x5eed_b7ea_cd04_4a11;
const OUTAGE_SALT: u64 = 0x5eed_007a_6e55_7a71;
const CLOSURE_SALT: u64 = 0x5eed_c105_ed00_c0a1;

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(config: &DeviationConfig, agents: usize, horizon: u64) -> Vec<Stall> {
        let mut schedule = DeviationSchedule::new(config, agents);
        let mut out = Vec::new();
        for t in 0..horizon {
            schedule.fire_at(t, |s| out.push(s));
        }
        out
    }

    #[test]
    fn disabled_schedule_never_fires() {
        assert!(collect(&DeviationConfig::none(), 8, 1000).is_empty());
        assert!(collect(&DeviationConfig::stalls(10, 2, 4, 1), 0, 1000).is_empty());
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let config = DeviationConfig::stalls(10, 2, 6, 42);
        let a = collect(&config, 8, 500);
        let b = collect(&config, 8, 500);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = collect(&DeviationConfig::stalls(10, 2, 6, 43), 8, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn stalls_respect_bounds_and_density() {
        let config = DeviationConfig::stalls(20, 3, 5, 7);
        let stalls = collect(&config, 4, 2_000);
        for s in &stalls {
            assert!((3..=5).contains(&s.ticks));
            assert!(s.agent < 4);
        }
        // Mean gap 20 over 2000 ticks: roughly 100 events; accept wide
        // bounds (the uniform-gap process is noisy).
        assert!(stalls.len() > 40, "{} stalls", stalls.len());
        assert!(stalls.len() < 250, "{} stalls", stalls.len());
    }

    #[test]
    fn reversed_stall_bounds_normalize_to_the_same_config() {
        // Documented behavior (not a silent quirk): (8, 2) == (2, 8).
        let reversed = DeviationConfig::stalls(10, 8, 2, 42);
        let ordered = DeviationConfig::stalls(10, 2, 8, 42);
        assert_eq!(reversed.min_ticks, 2);
        assert_eq!(reversed.max_ticks, 8);
        assert_eq!(collect(&reversed, 8, 500), collect(&ordered, 8, 500));
    }

    fn collect_faults(
        config: &FaultConfig,
        agents: usize,
        stations: usize,
        vertices: usize,
        horizon: u64,
    ) -> Vec<FaultEvent> {
        let mut schedule = FaultSchedule::new(config, agents, stations, vertices);
        let mut out = Vec::new();
        for t in 0..horizon {
            schedule.fire_at(t, |e| out.push(e));
        }
        out
    }

    #[test]
    fn disabled_faults_never_fire() {
        assert!(collect_faults(&FaultConfig::none(), 8, 2, 100, 1000).is_empty());
        let all_on = FaultConfig {
            breakdown_gap: 10,
            outage_gap: 10,
            closure_gap: 10,
            ..FaultConfig::default()
        };
        // Empty populations silence each stream.
        assert!(collect_faults(&all_on, 0, 0, 0, 1000).is_empty());
    }

    #[test]
    fn fault_schedule_is_deterministic_and_seed_sensitive() {
        let config = FaultConfig {
            breakdown_gap: 20,
            breakdown_min_ticks: 5,
            breakdown_max_ticks: 15,
            permanent_permille: 200,
            outage_gap: 50,
            closure_gap: 70,
            seed: 99,
            ..FaultConfig::default()
        };
        let a = collect_faults(&config, 8, 2, 120, 2000);
        let b = collect_faults(&config, 8, 2, 120, 2000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let other = FaultConfig {
            seed: 100,
            ..config
        };
        assert_ne!(a, collect_faults(&other, 8, 2, 120, 2000));
    }

    #[test]
    fn fault_streams_respect_bounds_and_kinds() {
        let config = FaultConfig {
            breakdown_gap: 25,
            breakdown_min_ticks: 5,
            breakdown_max_ticks: 10,
            permanent_permille: 300,
            outage_gap: 100,
            outage_min_ticks: 50,
            outage_max_ticks: 60,
            closure_gap: 150,
            closure_min_ticks: 20,
            closure_max_ticks: 30,
            seed: 7,
            ..FaultConfig::default()
        };
        let events = collect_faults(&config, 6, 3, 200, 5000);
        let mut breakdowns = 0;
        let mut permanent = 0;
        let mut outages = 0;
        let mut closures = 0;
        for e in &events {
            match *e {
                FaultEvent::Breakdown { at, agent, until } => {
                    breakdowns += 1;
                    assert!(agent < 6);
                    if until == NEVER {
                        permanent += 1;
                    } else {
                        assert!((5..=10).contains(&(until - at)));
                    }
                }
                FaultEvent::Outage { at, station, until } => {
                    outages += 1;
                    assert!(station < 3);
                    assert!((50..=60).contains(&(until - at)));
                }
                FaultEvent::Closure {
                    at, anchor, until, ..
                } => {
                    closures += 1;
                    assert!(anchor < 200);
                    assert!((20..=30).contains(&(until - at)));
                }
            }
        }
        assert!(breakdowns > 80, "{breakdowns} breakdowns");
        assert!(permanent > 10, "{permanent} permanent");
        assert!(permanent < breakdowns, "all breakdowns permanent");
        assert!(outages > 15, "{outages} outages");
        assert!(closures > 10, "{closures} closures");
    }

    #[test]
    fn reversed_fault_spans_normalize_like_stalls() {
        let reversed = FaultConfig {
            breakdown_gap: 20,
            breakdown_min_ticks: 15,
            breakdown_max_ticks: 5,
            outage_gap: 40,
            outage_min_ticks: 60,
            outage_max_ticks: 50,
            seed: 11,
            ..FaultConfig::default()
        };
        let ordered = FaultConfig {
            breakdown_min_ticks: 5,
            breakdown_max_ticks: 15,
            outage_min_ticks: 50,
            outage_max_ticks: 60,
            ..reversed
        };
        assert_eq!(
            collect_faults(&reversed, 8, 2, 100, 2000),
            collect_faults(&ordered, 8, 2, 100, 2000),
        );
    }

    #[test]
    fn next_fire_is_a_pure_peek_over_all_streams() {
        let config = FaultConfig {
            breakdown_gap: 30,
            outage_gap: 30,
            closure_gap: 30,
            seed: 3,
            ..FaultConfig::default()
        };
        let mut schedule = FaultSchedule::new(&config, 4, 2, 50);
        let first = schedule
            .next_fire()
            .expect("enabled schedule has a next event");
        assert_eq!(schedule.next_fire(), Some(first));
        // Nothing fires strictly before the peeked tick.
        let mut fired = Vec::new();
        schedule.fire_at(first - 1, |e| fired.push(e));
        assert!(fired.is_empty());
        schedule.fire_at(first, |e| fired.push(e));
        assert!(!fired.is_empty());
        assert!(fired.iter().all(|e| e.at() == first));
    }
}
