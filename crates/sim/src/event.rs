//! Sleep bookkeeping for the event-driven engine: which agents are
//! quiescent, how their plan cursors evolve analytically while they sleep,
//! and how queued events are invalidated when reality intervenes.
//!
//! # The elision contract
//!
//! An agent may sleep only while every tick it skips would have been a
//! no-op under the reference tick loop: no move, no pickup/drop-off, no
//! repair-candidacy change, no early-replan trigger the awake engine
//! would have seen. Two analytic regimes cover every such agent:
//!
//! * [`SleepMode::Silent`] — aligned, and the window plan holds it
//!   stationary with constant carry. The reference loop would still
//!   *advance its cursor* one index per tick (a stationary advance), so
//!   the settled cursor is `cursor₀ + (t − from)`, capped at the window
//!   length once the plan is exhausted. Its lag is constant while the
//!   cursor advances.
//! * [`SleepMode::Frozen`] — the reference loop would not advance the
//!   cursor at all: the agent is stalled, unaligned (parked off-plan
//!   until the next replan), or has exhausted its window plan. The
//!   settled cursor is `cursor₀` and its lag grows one tick per tick —
//!   which is why frozen sleepers may carry a *replan-lag crossing check*
//!   event ([`REPLAN_CHECK`]) scheduled for the exact tick the awake
//!   engine would first have observed `lag ≥ replan_lag`.
//!
//! Events carry a per-agent sequence number; waking or re-sleeping bumps
//! it, so stale wake-ups pop harmlessly instead of requiring queue
//! surgery. The reference engine maintains this book *virtually* (agents
//! stay in the processing domain) and debug-asserts that every settled
//! cursor matches the truth, which is what makes it an oracle for the
//! event engine rather than a separate implementation.
//!
//! Under [`crate::AssignPolicy::Auction`] agents execute missions instead
//! of the window plan, and the contract tightens: an idle mission-less
//! agent sleeps [`SleepMode::Frozen`] only while the assignment phase is
//! provably a no-op — either the pending queue is empty and the
//! rebalancer is not dirty, or the last pass was *clean* (committed
//! nothing, left the queue in arrival order) and no assignment input has
//! been dirtied since (the dirty-set skip: the engine then skips the
//! phase outright rather than re-running a provable no-op). A wedged
//! mission (its reroute rejected by the uniform route cap) also parks
//! `Frozen` until a replan or stall retries it. Otherwise the agent must
//! stay awake, because an assignment could hand it a mission on any
//! executed tick. Sleepers remain assignable: when a sleeping idle agent
//! wins a bid, the assignment pass wakes it through this same event
//! machinery (as do the deferred phase-8b nudges), so elision stays
//! unobservable with missions in play.

/// Event kind bit: the agent's next scheduled state change (end of a
/// silent run or of a stall) — wake it and process it normally.
pub(crate) const WAKE: u64 = 0;
/// Event kind bit: a frozen sleeper's lag crosses `replan_lag` at this
/// tick; mark it so the early-replan trigger stays observable.
pub(crate) const REPLAN_CHECK: u64 = 1 << 63;

/// Packs an event payload: kind bit | agent (bits 32..63) | sequence.
pub(crate) fn pack(kind: u64, agent: usize, seq: u32) -> u64 {
    debug_assert!(agent < (1 << 31));
    kind | (agent as u64) << 32 | u64::from(seq)
}

/// Unpacks an event payload into `(is_replan_check, agent, seq)`.
pub(crate) fn unpack(payload: u64) -> (bool, usize, u32) {
    (
        payload & REPLAN_CHECK != 0,
        ((payload >> 32) & 0x7fff_ffff) as usize,
        payload as u32,
    )
}

/// How a sleeping agent's plan cursor evolves while it sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SleepMode {
    /// Processed every executed tick.
    Awake,
    /// Aligned and stationary under the plan: cursor advances one index
    /// per sleeping tick (capped at the window length).
    Silent,
    /// Stalled, unaligned, or plan-exhausted: cursor does not move.
    Frozen,
}

/// The per-agent sleep ledger plus the aggregate counts the engine needs
/// every tick (bulk wait/carry accounting, the all-asleep elision test,
/// and the frozen-crossing early-replan trigger).
#[derive(Debug)]
pub(crate) struct SleepBook {
    mode: Vec<SleepMode>,
    /// First tick the current sleep covers.
    from: Vec<u64>,
    /// Cursor at `from` (indices into the window plan, so `u32` is ample).
    cursor0: Vec<u32>,
    /// Staleness sequence: queued events quote it and are void once the
    /// agent woke or re-slept.
    seq: Vec<u32>,
    /// Whether this frozen sleeper's replan-lag crossing already fired.
    over_replan: Vec<bool>,
    /// Sleeping agents (all modes).
    pub sleeping: usize,
    /// Sleeping agents currently carrying a product (for bulk
    /// `carrying_ticks` accounting on elided ticks).
    pub sleeping_carriers: u64,
    /// Frozen sleepers past their replan-lag crossing; while nonzero the
    /// early-replan condition holds even with no awake agent lagging.
    pub frozen_over_replan: usize,
}

impl SleepBook {
    pub(crate) fn new(agents: usize) -> Self {
        SleepBook {
            mode: vec![SleepMode::Awake; agents],
            from: vec![0; agents],
            cursor0: vec![0; agents],
            seq: vec![0; agents],
            over_replan: vec![false; agents],
            sleeping: 0,
            sleeping_carriers: 0,
            frozen_over_replan: 0,
        }
    }

    pub(crate) fn is_awake(&self, agent: usize) -> bool {
        self.mode[agent] == SleepMode::Awake
    }

    pub(crate) fn seq(&self, agent: usize) -> u32 {
        self.seq[agent]
    }

    pub(crate) fn mode(&self, agent: usize) -> SleepMode {
        self.mode[agent]
    }

    /// The cursor a sleeping agent has analytically reached at tick `t`
    /// (i.e. before tick `t` is processed).
    pub(crate) fn settled_cursor(&self, agent: usize, t: u64, window_len: usize) -> usize {
        let c0 = self.cursor0[agent] as usize;
        match self.mode[agent] {
            SleepMode::Awake => unreachable!("settling an awake agent"),
            SleepMode::Silent => (c0 + (t - self.from[agent]) as usize).min(window_len),
            SleepMode::Frozen => c0,
        }
    }

    /// Puts an awake agent to sleep from tick `from` with the given
    /// cursor; returns the fresh sequence number to stamp onto any events
    /// scheduled for it.
    pub(crate) fn sleep(
        &mut self,
        agent: usize,
        mode: SleepMode,
        from: u64,
        cursor: usize,
        carrying: bool,
    ) -> u32 {
        debug_assert!(self.is_awake(agent) && mode != SleepMode::Awake);
        self.mode[agent] = mode;
        self.from[agent] = from;
        self.cursor0[agent] = cursor as u32;
        self.seq[agent] = self.seq[agent].wrapping_add(1);
        self.sleeping += 1;
        self.sleeping_carriers += u64::from(carrying);
        self.seq[agent]
    }

    /// Wakes a sleeping agent (bumping its sequence, so any still-queued
    /// event for it pops stale).
    pub(crate) fn wake(&mut self, agent: usize, carrying: bool) {
        debug_assert!(!self.is_awake(agent));
        self.mode[agent] = SleepMode::Awake;
        self.seq[agent] = self.seq[agent].wrapping_add(1);
        self.sleeping -= 1;
        self.sleeping_carriers -= u64::from(carrying);
        if self.over_replan[agent] {
            self.over_replan[agent] = false;
            self.frozen_over_replan -= 1;
        }
    }

    /// Re-anchors a sleeping agent's analytic cursor at tick `t` without
    /// waking it (used when an outside observer — the repair projector —
    /// needs every cursor materialized mid-sleep). Queued events stay
    /// valid: the sequence is untouched.
    pub(crate) fn rebase(&mut self, agent: usize, t: u64, window_len: usize) -> usize {
        let settled = self.settled_cursor(agent, t, window_len);
        self.cursor0[agent] = settled as u32;
        self.from[agent] = t;
        settled
    }

    /// Records a frozen sleeper's replan-lag crossing; returns whether it
    /// was newly recorded.
    pub(crate) fn mark_over_replan(&mut self, agent: usize) -> bool {
        debug_assert!(self.mode[agent] == SleepMode::Frozen);
        if self.over_replan[agent] {
            return false;
        }
        self.over_replan[agent] = true;
        self.frozen_over_replan += 1;
        true
    }

    /// Wakes everyone (a replan re-anchors every agent, so all sleep
    /// state and crossings are void). The caller clears the event queue.
    pub(crate) fn reset(&mut self) {
        for m in &mut self.mode {
            *m = SleepMode::Awake;
        }
        self.over_replan.fill(false);
        self.sleeping = 0;
        self.sleeping_carriers = 0;
        self.frozen_over_replan = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_round_trip() {
        for &(kind, agent, seq) in &[
            (WAKE, 0usize, 0u32),
            (REPLAN_CHECK, 7, 1),
            (WAKE, (1 << 31) - 1, u32::MAX),
        ] {
            let (is_check, a, s) = unpack(pack(kind, agent, seq));
            assert_eq!(is_check, kind == REPLAN_CHECK);
            assert_eq!(a, agent);
            assert_eq!(s, seq);
        }
    }

    #[test]
    fn silent_cursor_advances_and_caps_while_frozen_holds() {
        let mut book = SleepBook::new(2);
        book.sleep(0, SleepMode::Silent, 10, 3, false);
        book.sleep(1, SleepMode::Frozen, 10, 5, true);
        assert_eq!(book.settled_cursor(0, 10, 8), 3);
        assert_eq!(book.settled_cursor(0, 14, 8), 7);
        assert_eq!(book.settled_cursor(0, 40, 8), 8); // capped
        assert_eq!(book.settled_cursor(1, 40, 8), 5);
        assert_eq!(book.sleeping, 2);
        assert_eq!(book.sleeping_carriers, 1);
        assert_eq!(book.rebase(0, 14, 8), 7);
        assert_eq!(book.settled_cursor(0, 15, 8), 8);
        book.wake(1, true);
        assert_eq!(book.sleeping, 1);
        assert_eq!(book.sleeping_carriers, 0);
    }

    #[test]
    fn sequences_invalidate_and_crossings_count() {
        let mut book = SleepBook::new(1);
        let s1 = book.sleep(0, SleepMode::Frozen, 0, 0, false);
        assert_eq!(book.seq(0), s1);
        assert!(book.mark_over_replan(0));
        assert!(!book.mark_over_replan(0));
        assert_eq!(book.frozen_over_replan, 1);
        book.wake(0, false);
        assert_ne!(book.seq(0), s1);
        assert_eq!(book.frozen_over_replan, 0);
        book.reset();
        assert_eq!(book.sleeping, 0);
    }
}
