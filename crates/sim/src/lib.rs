//! Lifelong warehouse simulation (`wsp-sim`): executes synthesized
//! designs over time instead of only verifying them.
//!
//! The paper's pipeline answers "can this design service workload `w`
//! within `T` timesteps?" — a one-shot question. Its sorting-center
//! setting is inherently *lifelong*, though: packages arrive continuously
//! and robots loop between induct stations and chutes forever. This crate
//! turns the repo's one-shot solver into a warehouse that runs:
//!
//! * a seeded stochastic **task stream** ([`TaskStream`]) drives arrivals,
//!   typically from `MapInstance::zipf_workload` mixes;
//! * the engine ([`Simulation`]) executes the design **event-driven**:
//!   quiescent agents sleep on a time-ordered bucket queue, fully
//!   quiescent ticks are skipped outright, and each executed tick sweeps
//!   only the active set ([`SimEngine::Event`]; the original full sweep
//!   survives as the [`SimEngine::Reference`] oracle), **replanning
//!   rolling-horizon windows** by resuming the staged pipeline from its
//!   realize stage ([`wsp_core::Pipeline::realize_window`]) with
//!   per-pipeline scratch, so steady-state ticks cost O(active agents),
//!   independent of the map size;
//! * seeded **stall deviations** ([`DeviationSchedule`]) knock execution
//!   off plan; a conflict-free movement resolver absorbs them (blocked
//!   agents wait and lag, never collide), and **MAPF catch-up repair**
//!   splices space-time A* detours planned against a shared
//!   [`wsp_mapf::ReservationTable`];
//! * everything lands in an integer-only [`SimReport`] whose canonical
//!   JSON is byte-identical for identical `(instance, config)` at every
//!   repair thread count — the determinism contract property-tested in
//!   `tests/determinism.rs` and pinned by the golden files under the
//!   umbrella crate's `tests/golden/`.
//!
//! # Examples
//!
//! ```
//! use wsp_core::{PipelineOptions, WspInstance};
//! use wsp_maps::sorting_center;
//! use wsp_sim::{SimConfig, Simulation, StreamConfig};
//!
//! let map = sorting_center()?;
//! let mix = map.zipf_workload(120, 1.0, 7);
//! let workload = map.uniform_workload(40);
//! let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3600);
//! let config = SimConfig {
//!     ticks: 400,
//!     stream: StreamConfig { mix, mean_gap: 3, seed: 7 },
//!     ..SimConfig::default()
//! };
//! let mut sim = Simulation::new(&instance, &PipelineOptions::default(), config)?;
//! let report = sim.run()?;
//! assert!(report.counters.conserved());
//! assert!(report.counters.completed > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod assign;
mod cycles;
mod deviation;
mod distfield;
mod engine;
mod event;
mod queue;
mod repair;
mod report;
mod stream;

pub use assign::{select_agent, AgentBid, AssignConfig, AssignPolicy};
pub use cycles::direct_cycle_set;
pub use deviation::{
    DeviationConfig, DeviationSchedule, FaultConfig, FaultEvent, FaultSchedule, Stall, NEVER,
};
pub use engine::{RepairConfig, SimConfig, SimEngine, SimError, Simulation};
pub use queue::BucketQueue;
pub use report::{SimCounters, SimReport, LATENCY_BUCKETS};
pub use stream::{StreamConfig, Task, TaskStream};

// Compile-time thread-safety audit for everything the repair fan-out
// shares across its scoped workers, plus the event-scheduler types that
// ride inside `Simulation` (mirrors `wsp_core::pipeline`'s block).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<wsp_mapf::ReservationTable>();
    assert_send_sync::<AssignConfig>();
    assert_send_sync::<AssignPolicy>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<FaultConfig>();
    assert_send_sync::<SimEngine>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<SimCounters>();
    assert_send_sync::<BucketQueue>();
    assert_send::<Simulation<'static>>();
};
