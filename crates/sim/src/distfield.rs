//! Distance-field cache for the auction assignment layer.
//!
//! Stations, staging anchors, and stocked pickup sites are fixed for an
//! instance's lifetime, so every distance the auction repeatedly needs
//! between them is computable once, up front:
//!
//! * **Anchor fields** — one full undirected BFS field per station
//!   anchor (dense `Vec<u32>` per the flat-index invariant, built via
//!   [`FloorplanGraph::bfs_distances_into`]). The rebalance pass reads
//!   an idle agent's bid in O(1) instead of probing escalating-cap BFS
//!   neighbourhoods from the anchor every executed tick; the escalation
//!   *slate* (everything within the first 32/128/512/∞ cap that catches
//!   the nearest bidder) is reconstructed exactly from the field.
//! * **Sorted site lists** — per `(station, product)`: the stocked sites
//!   ordered by field-directed distance (and site index), one list per
//!   direction. Site choice
//!   ([`AuctionState::pick_station_site`](crate::assign)) becomes "first
//!   entry with unreserved stock" instead of a full scan with a
//!   `BTreeMap` stock lookup per `(station, site)` pair, and follow-up
//!   batching walks sites in ascending out-distance with an early exit.
//!   A monotone cursor per list skips the permanently exhausted prefix:
//!   assignment-time reservations only ever *remove* stock, so a site
//!   that reads empty once reads empty forever.
//!
//! Memory: the lists store every reachable `(station, stocked site)`
//! pair twice (once per direction) at 8 bytes each, plus one `u32` per
//! vertex per anchor field — [`DistFields::bytes`] reports the real
//! total, which the bench note and docs/BENCHMARKS.md account for
//! (~51 MB on the 105k-vertex floor, dominated by the lists).
//!
//! Everything here is a pure precomputation: the cached lookups are
//! provably equal to the fresh scans they replace (property-tested
//! below and in `tests/assign_properties.rs`), so assignment decisions
//! are bit-identical with or without the cache.

use wsp_model::{FloorplanGraph, LocationMatrix, ProductId, VertexId};

/// One stocked site at a precomputed field distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SiteEntry {
    /// Field-directed distance (toward or out of the list's station).
    pub d: u32,
    /// The stocked shelf-access vertex.
    pub site: VertexId,
}

/// The auction's precomputed distance structures; see the module docs.
#[derive(Debug)]
pub(crate) struct DistFields {
    products: usize,
    /// `in_lists[q * products + p]`: stocked sites of `p` with a finite
    /// field route *to* station `q`, ascending `(distance, site)`.
    in_lists: Vec<Vec<SiteEntry>>,
    /// First `in_lists` entry not yet known to be exhausted.
    in_cursor: Vec<usize>,
    /// `out_lists[q * products + p]`: same sites keyed by the *forward*
    /// field distance out of station `q` (prices follow-up batch legs).
    out_lists: Vec<Vec<SiteEntry>>,
    /// First `out_lists` entry not yet known to be exhausted.
    out_cursor: Vec<usize>,
    /// Per station: full undirected BFS field from its staging anchor.
    anchor_fields: Vec<Vec<u32>>,
}

impl DistFields {
    /// Builds the cache from the auction's per-station directed fields
    /// and per-product site lists (all fixed at construction).
    pub(crate) fn new(
        graph: &FloorplanGraph,
        anchors: &[VertexId],
        to_station: &[Vec<u32>],
        from_station: &[Vec<u32>],
        sites: &[Vec<VertexId>],
    ) -> Self {
        let products = sites.len();
        let build = |fields: &[Vec<u32>]| -> Vec<Vec<SiteEntry>> {
            let mut lists = Vec::with_capacity(fields.len() * products);
            for field in fields {
                for list in sites {
                    let mut entries: Vec<SiteEntry> = list
                        .iter()
                        .filter_map(|&s| {
                            let d = field[s.index()];
                            (d != u32::MAX).then_some(SiteEntry { d, site: s })
                        })
                        .collect();
                    entries.sort_unstable_by_key(|e| (e.d, e.site.index()));
                    lists.push(entries);
                }
            }
            lists
        };
        let in_lists = build(to_station);
        let out_lists = build(from_station);
        let mut anchor_fields = Vec::with_capacity(anchors.len());
        let mut field = Vec::new();
        for &a in anchors {
            graph.bfs_distances_into(a, &mut field);
            anchor_fields.push(field.clone());
        }
        DistFields {
            products,
            in_cursor: vec![0; in_lists.len()],
            out_cursor: vec![0; out_lists.len()],
            in_lists,
            out_lists,
            anchor_fields,
        }
    }

    /// The cheapest stocked `(distance, site)` of `product` toward
    /// station `q` — the exact minimum the old full scan computed,
    /// because the list is ascending `(d, site)` and skipped entries
    /// have no stock. Skips are remembered: `reserved` is monotone
    /// decreasing, so the cursor never has to back up.
    pub(crate) fn first_stocked_in(
        &mut self,
        q: usize,
        product: ProductId,
        reserved: &LocationMatrix,
    ) -> Option<(u32, VertexId)> {
        let idx = q * self.products + product.index();
        let list = &self.in_lists[idx];
        let cur = &mut self.in_cursor[idx];
        while *cur < list.len() && reserved.units_at(list[*cur].site, product) == 0 {
            *cur += 1;
        }
        list.get(*cur).map(|e| (e.d, e.site))
    }

    /// The sites of `product` reachable out of station `q`, ascending by
    /// forward field distance, with the exhausted prefix skipped (and
    /// the skip remembered). Interior entries may still be out of stock
    /// — callers re-check, they just stop paying for the drained prefix.
    pub(crate) fn stocked_out_tail(
        &mut self,
        q: usize,
        product: ProductId,
        reserved: &LocationMatrix,
    ) -> &[SiteEntry] {
        let idx = q * self.products + product.index();
        let list = &self.out_lists[idx];
        let cur = &mut self.out_cursor[idx];
        while *cur < list.len() && reserved.units_at(list[*cur].site, product) == 0 {
            *cur += 1;
        }
        &list[*cur..]
    }

    /// Full undirected BFS distances from station `q`'s staging anchor.
    pub(crate) fn anchor_field(&self, q: usize) -> &[u32] {
        &self.anchor_fields[q]
    }

    /// Resident bytes of the cache (lists + cursors + anchor fields),
    /// for the bench note's memory accounting.
    pub(crate) fn bytes(&self) -> usize {
        let entries: usize = self
            .in_lists
            .iter()
            .chain(self.out_lists.iter())
            .map(Vec::len)
            .sum();
        entries * std::mem::size_of::<SiteEntry>()
            + (self.in_cursor.len() + self.out_cursor.len()) * std::mem::size_of::<usize>()
            + self.anchor_fields.iter().map(Vec::len).sum::<usize>() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `first_stocked_in` must equal the pre-cache scan: minimum
    /// `(distance, site)` over stocked, field-reachable sites — even as
    /// stock monotonically drains and the cursor advances.
    #[test]
    fn first_stocked_matches_fresh_scan_while_stock_drains() {
        // A hand-rolled field over 6 vertices; product 0 stocked at four
        // of them with assorted distances, including an unreachable one.
        let field = vec![vec![4u32, 2, 7, 2, u32::MAX, 0]];
        let sites = vec![vec![VertexId(0), VertexId(1), VertexId(3), VertexId(4)]];
        let graph = wsp_model::FloorplanGraph::from_grid(
            &wsp_model::GridMap::from_ascii("......").unwrap(),
        );
        let mut reserved = LocationMatrix::new();
        for &v in &sites[0] {
            reserved.add_units(v, ProductId(0), 1);
        }
        let mut fields = DistFields::new(&graph, &[], &field, &field, &sites);
        let oracle = |reserved: &LocationMatrix| {
            sites[0]
                .iter()
                .filter(|&&s| reserved.units_at(s, ProductId(0)) > 0)
                .filter_map(|&s| {
                    let d = field[0][s.index()];
                    (d != u32::MAX).then_some((d, s))
                })
                .min_by_key(|&(d, s)| (d, s.index()))
        };
        // Drain stock one unit at a time, checking the cached answer at
        // every step (v1 and v3 tie at distance 2; v1 wins by index).
        for expect_drop in [VertexId(1), VertexId(3), VertexId(0)] {
            let got = fields.first_stocked_in(0, ProductId(0), &reserved);
            assert_eq!(got, oracle(&reserved));
            let (_, s) = got.expect("stock remains");
            assert_eq!(s, expect_drop);
            reserved.remove_units(s, ProductId(0), 1);
        }
        // v4 is unreachable (MAX): never returned, and once the three
        // reachable sites drain the answer is None.
        assert_eq!(fields.first_stocked_in(0, ProductId(0), &reserved), None);
        assert_eq!(oracle(&reserved), None);
    }
}
