//! The lifelong simulation engine: executes a synthesized design tick by
//! tick against a task stream, with rolling-horizon replanning through the
//! staged pipeline's realize stage, stall deviations, and MAPF catch-up
//! repair.
//!
//! # Event model
//!
//! Each tick `t`, in order:
//!
//! 1. **Arrivals** — the seeded [`TaskStream`] delivers this tick's tasks
//!    into per-product FIFO queues.
//! 2. **Deviations** — the seeded [`DeviationSchedule`] freezes victims in
//!    place for a few ticks.
//! 3. **Repair** — agents far enough behind their window plan get a
//!    space-time A* catch-up path planned against a reservation table of
//!    everyone else's projected trajectory (parallel fan-out, slot-indexed
//!    for determinism).
//! 4. **Movement** — every agent names its desired next cell (its repair
//!    path, else its window plan); a fixpoint grant pass then executes all
//!    conflict-free chains simultaneously. Grants require the target cell
//!    empty or its occupant granted away, and one grant per cell, so
//!    vertex collisions and edge swaps are impossible *by construction*
//!    regardless of how badly deviations scrambled the schedule — blocked
//!    agents simply wait and accrue lag.
//! 5. **Bookkeeping** — executed pickups debit the authoritative stock
//!    ledger and attach the oldest queued task; executed drop-offs
//!    complete tasks and record latency; conservation
//!    (`injected == completed + in_flight + queued`) is asserted.
//!
//! When the window is exhausted (or lag crosses the early-replan
//! threshold) the engine snapshots the *actual* agent states and resumes
//! the pipeline's realize stage from them
//! ([`Pipeline::realize_window`]) — deviation divergence heals at every
//! replan, and in a deviation-free run the windows concatenate to exactly
//! the one-shot realization (the differential tests pin this).

use std::collections::VecDeque;

use wsp_core::{Pipeline, PipelineError, PipelineOptions, WspInstance};
use wsp_flow::AgentCycleSet;
use wsp_mapf::ReservationTable;
use wsp_model::{AgentState, Carry, LocationMatrix, Plan, ProductId, VertexId, NO_INDEX};
use wsp_realize::AgentSnapshot;

use crate::deviation::{DeviationConfig, DeviationSchedule, Stall};
use crate::repair::{accept_repairs, plan_repairs, RepairPath, RepairRequest};
use crate::report::{Fnv, SimCounters, SimReport};
use crate::stream::{StreamConfig, TaskStream};

/// Sentinel rejoin index for repairs that outlived their window plan: the
/// agent finishes its detour, then parks until the next replan re-anchors
/// it.
const STRAY_REJOIN: usize = usize::MAX;

/// Configuration of the MAPF catch-up repair stage.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Master switch (off by default: deviations then heal at replans
    /// only).
    pub enabled: bool,
    /// Attempt a catch-up once an agent's lag reaches this many ticks.
    pub lag_threshold: usize,
    /// Rejoin target: the plan cell `lag + slack` indices ahead of the
    /// cursor; the detour must arrive within `slack` ticks (the schedule
    /// recovered in full).
    pub slack: usize,
    /// How far ahead (ticks) other agents' trajectories are projected
    /// into the reservation table the catch-up searches plan against (the
    /// searches themselves are capped at `slack`, the arrival budget).
    pub lookahead: usize,
    /// Per-agent ticks between repair attempts.
    pub cooldown: u64,
    /// Most catch-up searches per tick; when more agents are eligible,
    /// the deepest-lagged (ties: lowest agent index) go first and the rest
    /// retry next tick. Bounds repair cost on convoy pile-ups with
    /// thousands of lagged agents.
    pub max_batch: usize,
    /// Worker threads for the A* fan-out (`None`: `WSP_THREADS`, then
    /// available parallelism). Results are byte-identical at any count.
    pub threads: Option<usize>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            enabled: false,
            lag_threshold: 4,
            slack: 6,
            lookahead: 96,
            cooldown: 8,
            max_batch: 16,
            threads: None,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Rolling-horizon window length in ticks (`0`: twice the design's
    /// cycle time, at least 32).
    pub window: usize,
    /// Ticks [`Simulation::run`] executes.
    pub ticks: u64,
    /// The task arrival stream.
    pub stream: StreamConfig,
    /// The stall-deviation process.
    pub deviations: DeviationConfig,
    /// The MAPF catch-up repair stage.
    pub repair: RepairConfig,
    /// Replan early once any agent's lag reaches this (`0`: replan at
    /// window boundaries only).
    pub replan_lag: usize,
    /// Minimum ticks between early replans (boundary replans are exempt).
    pub min_replan_gap: u64,
    /// Record the executed trajectories as a [`Plan`] (for the
    /// differential tests; costs O(agents × ticks) memory).
    pub record: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            window: 0,
            ticks: 1_000,
            stream: StreamConfig::default(),
            deviations: DeviationConfig::default(),
            repair: RepairConfig::default(),
            replan_lag: 0,
            min_replan_gap: 8,
            record: false,
        }
    }
}

/// Ways a simulation can fail to build or step.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The staged pipeline failed (synthesis, decomposition, or a window
    /// realization).
    Pipeline(PipelineError),
    /// The design has no agents to simulate.
    NoAgents,
    /// The configuration is inconsistent with the instance (e.g. the task
    /// mix demands products outside the catalog).
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Pipeline(e) => write!(f, "pipeline: {e}"),
            SimError::NoAgents => f.write_str("design has no agents"),
            SimError::BadConfig(detail) => write!(f, "bad sim config: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for SimError {
    fn from(e: PipelineError) -> Self {
        SimError::Pipeline(e)
    }
}

/// The lifelong simulator. Borrows the instance; owns everything else,
/// including the [`Pipeline`] whose realize scratch serves every window
/// replan — steady-state ticks are allocation-light (only window plans and
/// task bookkeeping allocate).
#[derive(Debug)]
pub struct Simulation<'a> {
    instance: &'a WspInstance,
    cycles: AgentCycleSet,
    pipeline: Pipeline,
    config: SimConfig,
    window_len: usize,

    stream: TaskStream,
    deviations: DeviationSchedule,
    stall_buf: Vec<Stall>,

    // Authoritative stock ledger (debited by *executed* pickups) and the
    // clone handed to each window realization.
    ledger: LocationMatrix,
    plan_ledger: LocationMatrix,

    // Current window plan; `window_start + cursor` is an agent's scheduled
    // absolute tick when on time.
    window_plan: Plan,
    window_start: u64,

    // Per-agent runtime state.
    pos: Vec<VertexId>,
    carry: Vec<Option<ProductId>>,
    cycle_of: Vec<usize>,
    step_of: Vec<usize>,
    advance_t: Vec<i64>,
    cursor: Vec<usize>,
    stall_until: Vec<u64>,
    attached: Vec<Option<u64>>,
    repair: Vec<Option<RepairPath>>,
    repair_cooldown_until: Vec<u64>,

    // Task queues, one FIFO of arrival ticks per product.
    queues: Vec<VecDeque<u64>>,

    // Dense per-vertex occupancy plus per-tick movement scratch, all
    // preallocated and cleared through touched lists; the tick body is
    // O(agents), independent of vertices.
    occupant: Vec<u32>,
    claimed: Vec<bool>,
    claimed_cells: Vec<u32>,
    desired: Vec<VertexId>,
    granted: Vec<bool>,
    movers: Vec<usize>,
    // Vacancy-chain worklist: per-cell FIFO of movers waiting on that
    // cell (ascending agent order), as an intrusive linked list.
    waiter_head: Vec<u32>,
    waiter_tail: Vec<u32>,
    waiter_next: Vec<u32>,
    waiter_cells: Vec<u32>,
    grant_queue: Vec<usize>,

    // Repair scratch. The reservation table is held for the simulation's
    // lifetime and cleared per repair event via its touched-list
    // `reset`, so a repair costs O(reservations projected), never the
    // O(vertices) re-init a fresh table would pay.
    requests: Vec<RepairRequest>,
    is_candidate: Vec<bool>,
    projection: Vec<VertexId>,
    repair_table: ReservationTable,

    t: u64,
    last_replan: u64,
    replan_requested: bool,
    counters: SimCounters,
    checksum: Fnv,
    executed: Option<Plan>,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation by running the staged pipeline's synthesize and
    /// decompose stages on the instance, then realizing the first window.
    ///
    /// # Errors
    ///
    /// [`SimError::Pipeline`] if synthesis/decomposition/realization fail,
    /// [`SimError::NoAgents`] for agent-free designs,
    /// [`SimError::BadConfig`] for a task mix outside the catalog.
    pub fn new(
        instance: &'a WspInstance,
        options: &PipelineOptions,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let mut pipeline = Pipeline::new();
        let flow = pipeline.synthesize(instance, options)?;
        let cycles = pipeline.decompose(&flow)?;
        Self::from_cycles_with_pipeline(instance, cycles.cycles, pipeline, config)
    }

    /// Builds a simulation from an explicit cycle set (e.g.
    /// [`direct_cycle_set`](crate::direct_cycle_set) on instances too
    /// large for the flow-synthesis ILP).
    ///
    /// # Errors
    ///
    /// As for [`Simulation::new`], minus the synthesis stage.
    pub fn from_cycles(
        instance: &'a WspInstance,
        cycles: AgentCycleSet,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        Self::from_cycles_with_pipeline(instance, cycles, Pipeline::new(), config)
    }

    fn from_cycles_with_pipeline(
        instance: &'a WspInstance,
        cycles: AgentCycleSet,
        pipeline: Pipeline,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let agents = cycles.total_agents();
        if agents == 0 {
            return Err(SimError::NoAgents);
        }
        config
            .stream
            .mix
            .validate_against(instance.warehouse.catalog())
            .map_err(|e| SimError::BadConfig(e.to_string()))?;
        let snapshots = wsp_realize::initial_snapshots(&instance.traffic, &cycles)
            .map_err(|e| SimError::Pipeline(PipelineError::Realize(e)))?;
        let window_len = if config.window == 0 {
            (2 * cycles.cycle_time()).max(32)
        } else {
            config.window.max(1)
        };
        let n_vertices = instance.warehouse.graph().vertex_count();
        let n_products = instance.warehouse.catalog().len();

        let mut occupant = vec![NO_INDEX; n_vertices];
        for (i, s) in snapshots.iter().enumerate() {
            occupant[s.pos.index()] = i as u32;
        }
        let executed = config.record.then(|| {
            let mut plan = Plan::new();
            for s in &snapshots {
                plan.add_agent(AgentState {
                    at: s.pos,
                    carry: s.carry.map_or(Carry::Empty, Carry::Product),
                });
            }
            plan
        });
        let mut checksum = Fnv::new();
        for s in &snapshots {
            checksum.write(u64::from(s.pos.0));
            checksum.write(s.carry.map_or(0, |p| u64::from(p.0) + 1));
        }

        let stream = TaskStream::new(&config.stream);
        let deviations = DeviationSchedule::new(&config.deviations, agents);
        let mut sim = Simulation {
            instance,
            cycles,
            pipeline,
            window_len,
            stream,
            deviations,
            stall_buf: Vec::new(),
            ledger: instance.warehouse.location_matrix().clone(),
            plan_ledger: LocationMatrix::new(),
            window_plan: Plan::new(),
            window_start: 0,
            pos: snapshots.iter().map(|s| s.pos).collect(),
            carry: snapshots.iter().map(|s| s.carry).collect(),
            cycle_of: snapshots.iter().map(|s| s.cycle).collect(),
            step_of: snapshots.iter().map(|s| s.step).collect(),
            advance_t: snapshots.iter().map(|s| s.advance_t).collect(),
            cursor: vec![0; agents],
            stall_until: vec![0; agents],
            attached: vec![None; agents],
            repair: (0..agents).map(|_| None).collect(),
            repair_cooldown_until: vec![0; agents],
            queues: (0..n_products).map(|_| VecDeque::new()).collect(),
            occupant,
            claimed: vec![false; n_vertices],
            claimed_cells: Vec::new(),
            desired: vec![VertexId(0); agents],
            granted: vec![false; agents],
            movers: Vec::with_capacity(agents),
            waiter_head: vec![NO_INDEX; n_vertices],
            waiter_tail: vec![NO_INDEX; n_vertices],
            waiter_next: vec![NO_INDEX; agents],
            waiter_cells: Vec::new(),
            grant_queue: Vec::with_capacity(agents),
            requests: Vec::new(),
            is_candidate: vec![false; agents],
            projection: Vec::new(),
            repair_table: ReservationTable::new(n_vertices),
            t: 0,
            last_replan: 0,
            replan_requested: false,
            counters: SimCounters::default(),
            checksum,
            executed,
            config,
        };
        sim.replan()?;
        Ok(sim)
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.t
    }

    /// The effective rolling-horizon window length.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of simulated agents.
    pub fn agent_count(&self) -> usize {
        self.pos.len()
    }

    /// The cycle set being executed.
    pub fn cycles(&self) -> &AgentCycleSet {
        &self.cycles
    }

    /// Live counters (the conservation invariant holds after every tick).
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// The executed trajectories, when `config.record` was set.
    pub fn executed_plan(&self) -> Option<&Plan> {
        self.executed.as_ref()
    }

    /// The report at this instant (cheap; callable mid-run).
    pub fn report(&self) -> SimReport {
        SimReport {
            agents: self.pos.len() as u64,
            vertices: self.instance.warehouse.graph().vertex_count() as u64,
            window: self.window_len as u64,
            stream_seed: self.config.stream.seed,
            deviation_seed: self.config.deviations.seed,
            trajectory_checksum: self.checksum.0,
            counters: self.counters.clone(),
        }
    }

    /// Runs until `config.ticks` and returns the final report.
    ///
    /// # Errors
    ///
    /// [`SimError::Pipeline`] if a window replan fails.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        while self.t < self.config.ticks {
            self.step()?;
        }
        Ok(self.report())
    }

    /// Runs `n` more ticks (for tests that interleave assertions).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_ticks(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Whether `agent`'s position matches its window-plan cursor cell (the
    /// precondition for following the plan).
    fn aligned(&self, agent: usize) -> bool {
        self.window_plan
            .state(agent, self.cursor[agent])
            .is_some_and(|s| s.at == self.pos[agent])
    }

    fn component_of(&self, v: VertexId) -> Option<wsp_traffic::ComponentId> {
        self.instance.traffic.component_of(v)
    }

    /// Snapshot the *actual* runtime state and realize the next window
    /// from it through the pipeline's realize stage.
    fn replan(&mut self) -> Result<(), SimError> {
        let t = self.t;
        let snapshots: Vec<AgentSnapshot> = (0..self.pos.len())
            .map(|a| AgentSnapshot {
                cycle: self.cycle_of[a],
                step: self.step_of[a],
                pos: self.pos[a],
                carry: self.carry[a],
                advance_t: self.advance_t[a],
            })
            .collect();
        self.plan_ledger.clone_from(&self.ledger);
        let out = self.pipeline.realize_window(
            self.instance,
            &self.cycles,
            t as usize,
            self.window_len,
            &snapshots,
            &mut self.plan_ledger,
        )?;
        self.window_plan = out.plan;
        self.window_start = t;
        self.cursor.fill(0);
        self.last_replan = t;
        self.replan_requested = false;
        self.counters.replans += 1;
        // Repairs of on-component agents are healed by the replan itself;
        // off-component agents keep their detour but now rejoin as strays
        // (park until the next replan re-anchors them).
        for a in 0..self.pos.len() {
            if self.repair[a].is_none() {
                continue;
            }
            let comp = self.cycles.cycles()[self.cycle_of[a]].steps()[self.step_of[a]].component;
            if self
                .instance
                .traffic
                .component(comp)
                .position(self.pos[a])
                .is_some()
            {
                self.repair[a] = None;
            } else if let Some(r) = self.repair[a].as_mut() {
                r.rejoin_cursor = STRAY_REJOIN;
            }
        }
        Ok(())
    }

    /// Executes one tick.
    ///
    /// # Errors
    ///
    /// [`SimError::Pipeline`] if the tick ends on a window boundary and
    /// the replan fails.
    pub fn step(&mut self) -> Result<(), SimError> {
        let t = self.t;
        let n = self.pos.len();

        // 1. Arrivals.
        for task in self.stream.arrivals_at(t) {
            self.queues[task.product.index()].push_back(task.arrival);
            self.counters.injected += 1;
            self.counters.queued += 1;
        }

        // 2. Deviations.
        self.stall_buf.clear();
        let buf = &mut self.stall_buf;
        self.deviations.fire_at(t, |s| buf.push(s));
        for s in self.stall_buf.drain(..) {
            let until = t + u64::from(s.ticks);
            self.stall_until[s.agent] = self.stall_until[s.agent].max(until);
            self.counters.stalls_injected += 1;
            self.counters.stall_ticks_injected += u64::from(s.ticks);
        }

        // 3. MAPF catch-up repair.
        if self.config.repair.enabled {
            self.try_repairs(t);
        }

        // 4. Desired moves.
        self.movers.clear();
        for cell in self.claimed_cells.drain(..) {
            self.claimed[cell as usize] = false;
        }
        for a in 0..n {
            self.granted[a] = false;
            let d = if t < self.stall_until[a] {
                self.pos[a]
            } else if let Some(r) = &self.repair[a] {
                if r.at + 1 < r.path.len() {
                    r.path[r.at + 1]
                } else {
                    self.pos[a]
                }
            } else if self.aligned(a) && self.cursor[a] < self.window_len {
                self.window_plan
                    .state(a, self.cursor[a] + 1)
                    .expect("cursor below horizon")
                    .at
            } else {
                self.pos[a]
            };
            self.desired[a] = d;
            if d != self.pos[a] {
                self.movers.push(a);
            }
        }

        // 5. Vacancy-chain grants, O(movers): a move is granted when its
        // target is unclaimed and either empty or freed by another granted
        // move. Movers into occupied cells register as waiters on the
        // cell; every grant then wakes the lowest-indexed waiter of the
        // freed cell, so convoy chains thousands of agents long resolve in
        // one linear sweep instead of a quadratic fixpoint. Pure cycles
        // (incl. head-on swaps) can never self-activate, so only
        // conflict-free chains execute — collision freedom by
        // construction, at any deviation load.
        for cell in self.waiter_cells.drain(..) {
            self.waiter_head[cell as usize] = NO_INDEX;
            self.waiter_tail[cell as usize] = NO_INDEX;
        }
        self.grant_queue.clear();
        for &a in &self.movers {
            let v = self.desired[a];
            let vi = v.index();
            if self.claimed[vi] {
                // Already granted away to an earlier mover: dead this tick.
                continue;
            }
            if self.occupant[vi] == NO_INDEX {
                self.granted[a] = true;
                self.claimed[vi] = true;
                self.claimed_cells.push(v.0);
                self.grant_queue.push(a);
            } else {
                // Waiter on an occupied cell, appended in ascending agent
                // order (movers are scanned ascending).
                self.waiter_next[a] = NO_INDEX;
                if self.waiter_head[vi] == NO_INDEX {
                    self.waiter_head[vi] = a as u32;
                    self.waiter_cells.push(v.0);
                } else {
                    self.waiter_next[self.waiter_tail[vi] as usize] = a as u32;
                }
                self.waiter_tail[vi] = a as u32;
            }
        }
        let mut qi = 0;
        while qi < self.grant_queue.len() {
            let a = self.grant_queue[qi];
            qi += 1;
            let freed = self.pos[a];
            let head = self.waiter_head[freed.index()];
            if head != NO_INDEX && !self.claimed[freed.index()] {
                let b = head as usize;
                self.granted[b] = true;
                self.claimed[freed.index()] = true;
                self.claimed_cells.push(freed.0);
                self.grant_queue.push(b);
            }
        }

        // 6. Apply moves (vacate first, then occupy, so chains are safe).
        for &a in &self.movers {
            if self.granted[a] {
                self.occupant[self.pos[a].index()] = NO_INDEX;
            }
        }
        for &a in &self.movers {
            if self.granted[a] {
                self.occupant[self.desired[a].index()] = a as u32;
            }
        }

        // 7. Per-agent advancement, events, and counters.
        let mut max_lag = 0u64;
        for a in 0..n {
            let old = self.pos[a];
            let moved = self.granted[a];
            if moved {
                self.pos[a] = self.desired[a];
                self.counters.moves += 1;
            } else {
                self.counters.waits += 1;
            }

            if t < self.stall_until[a] {
                // Frozen: no cursor/repair progress, no events.
            } else if self.repair[a].is_some() {
                let done = {
                    let r = self.repair[a].as_mut().expect("checked");
                    let wanted_wait = r.at + 1 >= r.path.len() || r.path[r.at + 1] == old;
                    if moved || wanted_wait {
                        r.at = (r.at + 1).min(r.path.len() - 1);
                    }
                    r.at + 1 >= r.path.len() && self.pos[a] == *r.path.last().expect("non-empty")
                };
                if done {
                    let rejoin = self.repair[a].as_ref().expect("checked").rejoin_cursor;
                    self.repair[a] = None;
                    if rejoin == STRAY_REJOIN {
                        // Parked off-plan; ask for a replan to re-anchor.
                        self.replan_requested = true;
                    } else {
                        self.cursor[a] = rejoin;
                    }
                }
            } else if let Some(cur) = self.window_plan.state(a, self.cursor[a]) {
                if cur.at == old && self.cursor[a] < self.window_len {
                    let next = self
                        .window_plan
                        .state(a, self.cursor[a] + 1)
                        .expect("below horizon");
                    let advanced = next.at == old || moved;
                    if advanced {
                        self.apply_carry_event(a, cur.carry, next.carry, old, t);
                        if next.at != old {
                            let hop = self.component_of(next.at) != self.component_of(old);
                            if hop {
                                let len = self.cycles.cycles()[self.cycle_of[a]].steps().len();
                                self.step_of[a] = (self.step_of[a] + 1) % len;
                                self.advance_t[a] = (t + 1) as i64;
                            }
                        }
                        self.cursor[a] += 1;
                    }
                }
            }

            if self.carry[a].is_some() {
                self.counters.carrying_ticks += 1;
            }
            // Lag of plan-following agents (repairing/stray agents are
            // re-anchored by rejoin or replan instead).
            if self.repair[a].is_none() {
                let scheduled = (t + 1).saturating_sub(self.window_start) as usize;
                let lag = scheduled.saturating_sub(self.cursor[a]) as u64;
                max_lag = max_lag.max(lag);
            }
        }
        self.counters.max_lag = self.counters.max_lag.max(max_lag);

        // 8. Record and checksum the executed configuration at t + 1.
        for a in 0..n {
            self.checksum.write(u64::from(self.pos[a].0));
            self.checksum
                .write(self.carry[a].map_or(0, |p| u64::from(p.0) + 1));
        }
        if let Some(plan) = self.executed.as_mut() {
            for a in 0..n {
                plan.push_state(
                    a,
                    AgentState {
                        at: self.pos[a],
                        carry: self.carry[a].map_or(Carry::Empty, Carry::Product),
                    },
                );
            }
        }

        self.counters.ticks += 1;
        debug_assert!(
            self.counters.conserved(),
            "task conservation violated at t={}: {} injected != {} completed + {} in flight + {} queued",
            t,
            self.counters.injected,
            self.counters.completed,
            self.counters.in_flight,
            self.counters.queued,
        );

        // 9. Window boundary / early replan (boundaries are mandatory;
        // early replans respect the minimum gap).
        self.t = t + 1;
        let boundary = (self.t - self.window_start) as usize >= self.window_len;
        let early = (self.replan_requested
            || (self.config.replan_lag > 0 && max_lag as usize >= self.config.replan_lag))
            && self.t - self.last_replan >= self.config.min_replan_gap;
        if boundary || early {
            self.replan()?;
        }
        Ok(())
    }

    /// Applies an executed carry transition: stock debit + task matching.
    /// `at` is the vertex the action happened on (the *pre-move* cell, as
    /// in the plan checker's condition (3)); completion is stamped `t + 1`
    /// to match [`wsp_model::PlanStats::last_delivery`].
    fn apply_carry_event(
        &mut self,
        agent: usize,
        before: Carry,
        after: Carry,
        at: VertexId,
        t: u64,
    ) {
        match (before, after) {
            (Carry::Empty, Carry::Product(p)) => {
                debug_assert!(
                    self.ledger.units_at(at, p) > 0,
                    "executed pickup of {p} at {at} with an empty ledger"
                );
                self.ledger.remove_units(at, p, 1);
                self.carry[agent] = Some(p);
                if let Some(arrival) = self.queues[p.index()].pop_front() {
                    self.attached[agent] = Some(arrival);
                    self.counters.queued -= 1;
                    self.counters.in_flight += 1;
                }
            }
            (Carry::Product(p), Carry::Empty) => {
                self.carry[agent] = None;
                self.counters.delivered += 1;
                if let Some(arrival) = self.attached[agent].take() {
                    self.counters.in_flight -= 1;
                    self.counters.record_latency(t + 1 - arrival);
                } else if let Some(arrival) = self.queues[p.index()].pop_front() {
                    self.counters.queued -= 1;
                    self.counters.record_latency(t + 1 - arrival);
                } else {
                    self.counters.unmatched_deliveries += 1;
                }
            }
            (Carry::Product(p), Carry::Product(q)) => {
                debug_assert_eq!(p, q, "carried product mutated in the window plan");
            }
            (Carry::Empty, Carry::Empty) => {}
        }
    }

    /// Collects catch-up candidates, plans them in parallel against the
    /// projected reservation table, and splices in the accepted detours.
    fn try_repairs(&mut self, t: u64) {
        let n = self.pos.len();
        let cfg = self.config.repair.clone();
        self.requests.clear();
        for flag in self.is_candidate.iter_mut() {
            *flag = false;
        }
        for a in 0..n {
            if t < self.stall_until[a]
                || self.repair[a].is_some()
                || t < self.repair_cooldown_until[a]
                || !self.aligned(a)
            {
                continue;
            }
            let elapsed = (t - self.window_start) as usize;
            let lag = elapsed.saturating_sub(self.cursor[a]);
            if lag < cfg.lag_threshold {
                continue;
            }
            let rejoin = self.cursor[a] + lag + cfg.slack;
            if rejoin > self.window_len {
                continue;
            }
            // Eligibility: constant carry and zero hops over the skipped
            // segment, so rejoin preserves every pickup/drop-off and the
            // cycle-step bookkeeping.
            let base = self
                .window_plan
                .state(a, self.cursor[a])
                .expect("aligned cursor");
            let base_comp = self.component_of(base.at);
            let eligible = (self.cursor[a] + 1..=rejoin).all(|i| {
                let s = self.window_plan.state(a, i).expect("within horizon");
                s.carry == base.carry && self.component_of(s.at) == base_comp
            });
            if !eligible {
                continue;
            }
            let goal = self
                .window_plan
                .state(a, rejoin)
                .expect("within horizon")
                .at;
            if goal == self.pos[a] || cfg.slack == 0 {
                continue;
            }
            self.requests.push(RepairRequest {
                agent: a,
                start: self.pos[a],
                goal,
                deadline: cfg.slack,
                rejoin_cursor: rejoin,
                lag,
            });
        }
        if self.requests.is_empty() {
            return;
        }
        // Deepest-lagged first when the batch is over budget (ties break
        // toward the lowest agent index), then back to agent order so the
        // acceptance pass stays order-deterministic.
        if self.requests.len() > cfg.max_batch.max(1) {
            self.requests
                .sort_unstable_by(|x, y| y.lag.cmp(&x.lag).then(x.agent.cmp(&y.agent)));
            self.requests.truncate(cfg.max_batch.max(1));
            self.requests.sort_unstable_by_key(|r| r.agent);
        }
        for r in &self.requests {
            self.repair_cooldown_until[r.agent] = t + cfg.cooldown;
            self.counters.repairs_attempted += 1;
            self.is_candidate[r.agent] = true;
        }

        // Shared reservation table: everyone except the candidates,
        // projected `lookahead` ticks ahead (stall first, then plan or
        // active repair path, then parked forever). The table persists
        // across repair events; `reset` clears it in O(touched), so the
        // repair path stays vertex-count independent. (Temporarily moved
        // out of `self` so the projection buffer can be borrowed
        // alongside it.)
        let graph = self.instance.warehouse.graph();
        let mut table = std::mem::replace(&mut self.repair_table, ReservationTable::new(0));
        table.reset();
        for b in 0..n {
            if self.is_candidate[b] {
                continue;
            }
            self.projection.clear();
            self.projection.push(self.pos[b]);
            let mut stall_left = self.stall_until[b].saturating_sub(t) as usize;
            while stall_left > 0 && self.projection.len() < cfg.lookahead {
                self.projection.push(self.pos[b]);
                stall_left -= 1;
            }
            if let Some(r) = &self.repair[b] {
                for &v in r.path.iter().skip(r.at + 1) {
                    if self.projection.len() >= cfg.lookahead {
                        break;
                    }
                    self.projection.push(v);
                }
            } else if self.aligned(b) {
                let mut k = self.cursor[b] + 1;
                while self.projection.len() < cfg.lookahead && k <= self.window_len {
                    self.projection
                        .push(self.window_plan.state(b, k).expect("within horizon").at);
                    k += 1;
                }
            }
            // `reserve_path` parks the final projected cell from its
            // arrival time onward, so truncated projections stay
            // conservatively blocked past the horizon.
            table.reserve_path(&self.projection);
        }

        let threads = wsp_core::resolve_threads(cfg.threads);
        let found = plan_repairs(graph, &table, &self.requests, threads);
        self.repair_table = table;
        for (agent, path) in accept_repairs(&self.requests, found) {
            self.repair[agent] = Some(path);
            self.counters.repairs_applied += 1;
        }
    }
}
