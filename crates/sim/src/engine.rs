//! The lifelong simulation engine: executes a synthesized design tick by
//! tick against a task stream, with rolling-horizon replanning through the
//! staged pipeline's realize stage, stall deviations, and MAPF catch-up
//! repair.
//!
//! # Event model
//!
//! Each tick `t`, in order:
//!
//! 1. **Arrivals** — the seeded [`TaskStream`] delivers this tick's tasks
//!    into per-product FIFO queues (under
//!    [`AssignPolicy::Auction`](crate::AssignPolicy), into the auction's
//!    pending queue instead).
//! 2. **Deviations** — the seeded [`DeviationSchedule`] freezes victims in
//!    place for a few ticks. Then **faults** — the seeded
//!    [`FaultSchedule`] breaks agents (an unbounded stall whose assigned
//!    tasks are shed back to the queue), darkens stations (no new
//!    assignments until the outage expires), and closes corridor cells
//!    (moves into them are vetoed; routes and repairs detour around).
//!    Expired faults re-open symmetrically, and every fire/expiry is a
//!    forced tick, so chaos runs elide and parallelize exactly like
//!    clean ones.
//! 3. **Assignment** (`Auction` only) — a deterministic auction matches
//!    pending tasks to idle or soon-idle agents by minimum
//!    `(BFS-distance, agent index)` bid, batches same-product tasks onto
//!    the winner, and stages leftover idle agents toward pressured
//!    stations ([`crate::assign`] states the exact cost model); matched
//!    agents receive pickup→drop *missions* that replace the window plan
//!    as their movement source.
//! 4. **Repair** — agents far enough behind their window plan get a
//!    space-time A* catch-up path planned against a reservation table of
//!    everyone else's projected trajectory (parallel fan-out, slot-indexed
//!    for determinism). Skipped under `Auction`: missions re-route
//!    themselves, and plan lag is undefined off-plan.
//! 5. **Movement** — every agent names its desired next cell (its repair
//!    path, else its mission path under `Auction`, else its window plan);
//!    a fixpoint grant pass then executes all
//!    conflict-free chains simultaneously. Grants require the target cell
//!    empty or its occupant granted away, and one grant per cell, so
//!    vertex collisions and edge swaps are impossible *by construction*
//!    regardless of how badly deviations scrambled the schedule — blocked
//!    agents simply wait and accrue lag.
//! 6. **Bookkeeping** — executed pickups debit the authoritative stock
//!    ledger and attach the oldest queued task (mission legs fire their
//!    own pickup/drop actions); executed drop-offs
//!    complete tasks and record latency; conservation
//!    (`injected == completed + in_flight + queued`) is asserted. Mission
//!    agents blocked long enough file deferred nudges, applied after the
//!    sweep (phase 8b) so wake ordering stays engine-independent.
//!
//! When the window is exhausted (or lag crosses the early-replan
//! threshold) the engine snapshots the *actual* agent states and resumes
//! the pipeline's realize stage from them
//! ([`Pipeline::realize_window`]) — deviation divergence heals at every
//! replan, and in a deviation-free run the windows concatenate to exactly
//! the one-shot realization (the differential tests pin this).
//!
//! # Event-driven stepping
//!
//! The default [`SimEngine::Event`] engine runs that tick model through a
//! time-ordered event queue instead of sweeping every agent every tick.
//! Agents whose next ticks are provably no-ops under the reference loop
//! go to sleep ([`crate::event`] states the exact contract) with a
//! wake-up — their next scheduled state change, read straight off the
//! window realization's `first_change` schedule — filed in a monotone
//! bucket queue ([`crate::queue`]); each executed tick then runs phases
//! 1–6 over the *active set* only, and when the active set is empty the
//! engine advances time directly to the next forced tick (queued event,
//! task arrival, stall firing, window boundary, or a pending replan's
//! minimum-gap expiry), bulk-accounting the skipped ticks.
//!
//! Elision is unobservable by construction: [`SimEngine::Reference`]
//! keeps the original full-sweep loop (plus the same scheduler
//! bookkeeping, run virtually, with `debug_assert`s that every sleeping
//! agent really did stay quiescent) and the differential tests pin the
//! two engines to byte-identical [`SimReport`] JSON at every repair
//! thread count.

use std::collections::VecDeque;

use wsp_core::{Pipeline, PipelineError, PipelineOptions, WspInstance};
use wsp_flow::AgentCycleSet;
use wsp_mapf::ReservationTable;
use wsp_model::{AgentState, Carry, Coord, LocationMatrix, Plan, ProductId, VertexId, NO_INDEX};
use wsp_realize::AgentSnapshot;

use crate::assign::{
    select_agent, AgentBid, AssignConfig, AssignPolicy, AuctionState, ClosedSet, Leg, LegAction,
    Mission, MissionKind, PendingTask,
};
use crate::deviation::{
    DeviationConfig, DeviationSchedule, FaultConfig, FaultEvent, FaultSchedule, Stall, NEVER,
};
use crate::event::{self, SleepBook, SleepMode};
use crate::queue::BucketQueue;
use crate::repair::{accept_repairs, plan_repairs, RepairPath, RepairRequest};
use crate::report::{Fnv, SimCounters, SimReport};
use crate::stream::{StreamConfig, TaskStream};

/// Sentinel rejoin index for repairs that outlived their window plan: the
/// agent finishes its detour, then parks until the next replan re-anchors
/// it.
const STRAY_REJOIN: usize = usize::MAX;

/// Configuration of the MAPF catch-up repair stage.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Master switch (off by default: deviations then heal at replans
    /// only).
    pub enabled: bool,
    /// Attempt a catch-up once an agent's lag reaches this many ticks.
    pub lag_threshold: usize,
    /// Rejoin target: the plan cell `lag + slack` indices ahead of the
    /// cursor; the detour must arrive within `slack` ticks (the schedule
    /// recovered in full).
    pub slack: usize,
    /// How far ahead (ticks) other agents' trajectories are projected
    /// into the reservation table the catch-up searches plan against (the
    /// searches themselves are capped at `slack`, the arrival budget).
    pub lookahead: usize,
    /// Per-agent ticks between repair attempts.
    pub cooldown: u64,
    /// Most catch-up searches per tick; when more agents are eligible,
    /// the deepest-lagged (ties: lowest agent index) go first and the rest
    /// retry next tick. Bounds repair cost on convoy pile-ups with
    /// thousands of lagged agents.
    pub max_batch: usize,
    /// Worker threads for the A* fan-out (`None`: `WSP_THREADS`, then
    /// available parallelism). Results are byte-identical at any count.
    pub threads: Option<usize>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            enabled: false,
            lag_threshold: 4,
            slack: 6,
            lookahead: 96,
            cooldown: 8,
            max_batch: 16,
            threads: None,
        }
    }
}

/// Which stepping core drives the simulation. Both produce byte-identical
/// [`SimReport`] JSON for identical `(instance, config)` at every repair
/// thread count — the differential tests pin this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// Event-driven (the default): quiescent agents sleep on a bucket
    /// queue, fully quiescent ticks are skipped outright, and each
    /// executed tick sweeps only the active set.
    #[default]
    Event,
    /// The original full-sweep tick loop, kept as the oracle for the
    /// event engine (it still runs the scheduler bookkeeping virtually so
    /// the event counters match).
    Reference,
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Rolling-horizon window length in ticks (`0`: twice the design's
    /// cycle time, at least 32).
    pub window: usize,
    /// Ticks [`Simulation::run`] executes.
    pub ticks: u64,
    /// The task arrival stream.
    pub stream: StreamConfig,
    /// The task-assignment layer ([`AssignPolicy::Static`] by default —
    /// the seed pickup-attach behavior, bit-for-bit).
    pub assign: AssignConfig,
    /// The stall-deviation process.
    pub deviations: DeviationConfig,
    /// The structural fault-injection process (agent breakdowns, station
    /// outages, corridor closures; all streams off by default). Enabling
    /// any stream also turns on the report's fault counters.
    pub faults: FaultConfig,
    /// The MAPF catch-up repair stage.
    pub repair: RepairConfig,
    /// Replan early once any agent's lag reaches this (`0`: replan at
    /// window boundaries only).
    pub replan_lag: usize,
    /// Minimum ticks between early replans (boundary replans are exempt).
    pub min_replan_gap: u64,
    /// Record the executed trajectories as a [`Plan`] (for the
    /// differential tests; costs O(agents × ticks) memory — and makes
    /// elided ticks cost O(agents) each, since their unchanged states
    /// still get recorded).
    pub record: bool,
    /// The stepping core (event-driven by default).
    pub engine: SimEngine,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            window: 0,
            ticks: 1_000,
            stream: StreamConfig::default(),
            assign: AssignConfig::default(),
            deviations: DeviationConfig::default(),
            faults: FaultConfig::default(),
            repair: RepairConfig::default(),
            replan_lag: 0,
            min_replan_gap: 8,
            record: false,
            engine: SimEngine::default(),
        }
    }
}

/// Ways a simulation can fail to build or step.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The staged pipeline failed (synthesis, decomposition, or a window
    /// realization).
    Pipeline(PipelineError),
    /// The design has no agents to simulate.
    NoAgents,
    /// The configuration is inconsistent with the instance (e.g. the task
    /// mix demands products outside the catalog).
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Pipeline(e) => write!(f, "pipeline: {e}"),
            SimError::NoAgents => f.write_str("design has no agents"),
            SimError::BadConfig(detail) => write!(f, "bad sim config: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for SimError {
    fn from(e: PipelineError) -> Self {
        SimError::Pipeline(e)
    }
}

/// The lifelong simulator. Borrows the instance; owns everything else,
/// including the [`Pipeline`] whose realize scratch serves every window
/// replan — steady-state ticks are allocation-light (only window plans and
/// task bookkeeping allocate).
#[derive(Debug)]
pub struct Simulation<'a> {
    instance: &'a WspInstance,
    cycles: AgentCycleSet,
    pipeline: Pipeline,
    config: SimConfig,
    window_len: usize,

    stream: TaskStream,
    deviations: DeviationSchedule,
    stall_buf: Vec<Stall>,
    faults: FaultSchedule,
    fault_buf: Vec<FaultEvent>,

    // Fault state. A station is dark while `t < dark_until[q]`
    // (`dark_active` counts the currently dark ones); a vertex is closed
    // while `t < closed_until[v]`, with `closed_cells` listing exactly
    // the currently closed cells so expiry and repair scans stay
    // O(closures), never O(vertices). Breakdowns need no state of their
    // own: they ride the stall machinery (`stall_until`, with `NEVER`
    // for permanent losses).
    dark_until: Vec<u64>,
    dark_active: usize,
    closed_until: Vec<u64>,
    closed_cells: Vec<VertexId>,

    // Authoritative stock ledger (debited by *executed* pickups) and the
    // clone handed to each window realization.
    ledger: LocationMatrix,
    plan_ledger: LocationMatrix,

    // Current window plan; `window_start + cursor` is an agent's scheduled
    // absolute tick when on time.
    window_plan: Plan,
    window_start: u64,

    // Per-agent runtime state.
    pos: Vec<VertexId>,
    carry: Vec<Option<ProductId>>,
    cycle_of: Vec<usize>,
    step_of: Vec<usize>,
    advance_t: Vec<i64>,
    cursor: Vec<usize>,
    stall_until: Vec<u64>,
    attached: Vec<Option<u64>>,
    repair: Vec<Option<RepairPath>>,
    repair_cooldown_until: Vec<u64>,

    // Task queues, one FIFO of arrival ticks per product.
    queues: Vec<VecDeque<u64>>,

    // Dense per-vertex occupancy plus per-tick movement scratch, all
    // preallocated and cleared through touched lists; the tick body is
    // O(agents), independent of vertices.
    occupant: Vec<u32>,
    claimed: Vec<bool>,
    claimed_cells: Vec<u32>,
    desired: Vec<VertexId>,
    granted: Vec<bool>,
    movers: Vec<usize>,
    // Vacancy-chain worklist: per-cell FIFO of movers waiting on that
    // cell (ascending agent order), as an intrusive linked list.
    waiter_head: Vec<u32>,
    waiter_tail: Vec<u32>,
    waiter_next: Vec<u32>,
    waiter_cells: Vec<u32>,
    grant_queue: Vec<usize>,

    // Repair scratch. The reservation table is held for the simulation's
    // lifetime and cleared per repair event via its touched-list
    // `reset`, so a repair costs O(reservations projected), never the
    // O(vertices) re-init a fresh table would pay.
    requests: Vec<RepairRequest>,
    is_candidate: Vec<bool>,
    projection: Vec<VertexId>,
    repair_table: ReservationTable,

    // Event scheduler: the sleep ledger, the tick-keyed event queue, the
    // active set rebuilt each executed tick, and the current window's
    // per-agent first-change schedule from the realize stage. The
    // reference engine maintains all of it virtually (its processing
    // domain stays 0..n), which is what keeps the two engines'
    // event/elision counters byte-identical.
    sleep: SleepBook,
    queue: BucketQueue,
    active: Vec<u32>,
    due_buf: Vec<u64>,
    first_change: Vec<u32>,

    // Auction task-assignment state (`None` under
    // [`AssignPolicy::Static`] — static runs pay nothing for the layer).
    // `nudge_buf` defers yield-nudges of parked blockers to the end of
    // the tick so mid-sweep sleep accounting stays phase-stable, and
    // `bids` is the auction's candidate scratch.
    auction: Option<Box<AuctionState>>,
    nudge_buf: Vec<u32>,
    bids: Vec<AgentBid>,

    t: u64,
    last_replan: u64,
    replan_requested: bool,
    counters: SimCounters,
    checksum: Fnv,
    executed: Option<Plan>,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation by running the staged pipeline's synthesize and
    /// decompose stages on the instance, then realizing the first window.
    ///
    /// # Errors
    ///
    /// [`SimError::Pipeline`] if synthesis/decomposition/realization fail,
    /// [`SimError::NoAgents`] for agent-free designs,
    /// [`SimError::BadConfig`] for a task mix outside the catalog.
    pub fn new(
        instance: &'a WspInstance,
        options: &PipelineOptions,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let mut pipeline = Pipeline::new();
        let flow = pipeline.synthesize(instance, options)?;
        let cycles = pipeline.decompose(&flow)?;
        Self::from_cycles_with_pipeline(instance, cycles.cycles, pipeline, config)
    }

    /// Builds a simulation from an explicit cycle set (e.g.
    /// [`direct_cycle_set`](crate::direct_cycle_set) on instances too
    /// large for the flow-synthesis ILP).
    ///
    /// # Errors
    ///
    /// As for [`Simulation::new`], minus the synthesis stage.
    pub fn from_cycles(
        instance: &'a WspInstance,
        cycles: AgentCycleSet,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        Self::from_cycles_with_pipeline(instance, cycles, Pipeline::new(), config)
    }

    fn from_cycles_with_pipeline(
        instance: &'a WspInstance,
        cycles: AgentCycleSet,
        pipeline: Pipeline,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let agents = cycles.total_agents();
        if agents == 0 {
            return Err(SimError::NoAgents);
        }
        config
            .stream
            .mix
            .validate_against(instance.warehouse.catalog())
            .map_err(|e| SimError::BadConfig(e.to_string()))?;
        let snapshots = wsp_realize::initial_snapshots(&instance.traffic, &cycles)
            .map_err(|e| SimError::Pipeline(PipelineError::Realize(e)))?;
        let window_len = if config.window == 0 {
            (2 * cycles.cycle_time()).max(32)
        } else {
            config.window.max(1)
        };
        let n_vertices = instance.warehouse.graph().vertex_count();
        let n_products = instance.warehouse.catalog().len();
        let n_stations = instance.warehouse.stations().len();

        let mut occupant = vec![NO_INDEX; n_vertices];
        for (i, s) in snapshots.iter().enumerate() {
            occupant[s.pos.index()] = i as u32;
        }
        let executed = config.record.then(|| {
            let mut plan = Plan::new();
            for s in &snapshots {
                plan.add_agent(AgentState {
                    at: s.pos,
                    carry: s.carry.map_or(Carry::Empty, Carry::Product),
                });
            }
            plan
        });
        let mut checksum = Fnv::new();
        for s in &snapshots {
            checksum.write(u64::from(s.pos.0));
            checksum.write(s.carry.map_or(0, |p| u64::from(p.0) + 1));
        }

        let stream = TaskStream::new(&config.stream);
        let deviations = DeviationSchedule::new(&config.deviations, agents);
        let auction = (config.assign.policy == AssignPolicy::Auction)
            .then(|| Box::new(AuctionState::new(&instance.warehouse, agents)));
        let mut sim = Simulation {
            instance,
            cycles,
            pipeline,
            window_len,
            stream,
            deviations,
            stall_buf: Vec::with_capacity(8),
            faults: FaultSchedule::new(&config.faults, agents, n_stations, n_vertices),
            fault_buf: Vec::with_capacity(8),
            dark_until: vec![0; n_stations],
            dark_active: 0,
            closed_until: vec![0; n_vertices],
            closed_cells: Vec::new(),
            ledger: instance.warehouse.location_matrix().clone(),
            plan_ledger: LocationMatrix::new(),
            window_plan: Plan::new(),
            window_start: 0,
            pos: snapshots.iter().map(|s| s.pos).collect(),
            carry: snapshots.iter().map(|s| s.carry).collect(),
            cycle_of: snapshots.iter().map(|s| s.cycle).collect(),
            step_of: snapshots.iter().map(|s| s.step).collect(),
            advance_t: snapshots.iter().map(|s| s.advance_t).collect(),
            cursor: vec![0; agents],
            stall_until: vec![0; agents],
            attached: vec![None; agents],
            repair: (0..agents).map(|_| None).collect(),
            repair_cooldown_until: vec![0; agents],
            queues: (0..n_products).map(|_| VecDeque::new()).collect(),
            occupant,
            claimed: vec![false; n_vertices],
            claimed_cells: Vec::with_capacity(agents),
            desired: vec![VertexId(0); agents],
            granted: vec![false; agents],
            movers: Vec::with_capacity(agents),
            waiter_head: vec![NO_INDEX; n_vertices],
            waiter_tail: vec![NO_INDEX; n_vertices],
            waiter_next: vec![NO_INDEX; agents],
            waiter_cells: Vec::with_capacity(agents),
            grant_queue: Vec::with_capacity(agents),
            requests: Vec::with_capacity(config.repair.max_batch.max(1)),
            is_candidate: vec![false; agents],
            projection: Vec::with_capacity(config.repair.lookahead + 1),
            repair_table: ReservationTable::new(n_vertices),
            sleep: SleepBook::new(agents),
            queue: BucketQueue::new(window_len),
            active: Vec::with_capacity(agents),
            due_buf: Vec::with_capacity(16),
            first_change: Vec::new(),
            auction,
            nudge_buf: Vec::new(),
            bids: Vec::with_capacity(agents),
            t: 0,
            last_replan: 0,
            replan_requested: false,
            counters: SimCounters::default(),
            checksum,
            executed,
            config,
        };
        sim.replan()?;
        Ok(sim)
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.t
    }

    /// The effective rolling-horizon window length.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of simulated agents.
    pub fn agent_count(&self) -> usize {
        self.pos.len()
    }

    /// The cycle set being executed.
    pub fn cycles(&self) -> &AgentCycleSet {
        &self.cycles
    }

    /// Live counters (the conservation invariant holds after every tick).
    /// `max_lag` folds lazily for sleeping agents under the event engine;
    /// [`report`](Self::report) compensates — compare reports, not raw
    /// counters, across engines.
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// The executed trajectories, when `config.record` was set.
    pub fn executed_plan(&self) -> Option<&Plan> {
        self.executed.as_ref()
    }

    /// The report at this instant (cheap; callable mid-run). Sleeping
    /// agents' accrued lag is folded in here without disturbing the run,
    /// so mid-run reports match across engines too.
    pub fn report(&self) -> SimReport {
        let mut counters = self.counters.clone();
        // Under the auction policy agents don't follow the window plan,
        // so plan lag is meaningless and `max_lag` stays 0 by contract.
        if self.sleep.sleeping > 0 && self.config.assign.policy == AssignPolicy::Static {
            counters.max_lag = counters.max_lag.max(self.pending_sleep_lag());
        }
        SimReport {
            agents: self.pos.len() as u64,
            vertices: self.instance.warehouse.graph().vertex_count() as u64,
            window: self.window_len as u64,
            stream_seed: self.config.stream.seed,
            deviation_seed: self.config.deviations.seed,
            policy: self.config.assign.policy,
            faults: self.config.faults.enabled(),
            trajectory_checksum: self.checksum.0,
            counters,
        }
    }

    /// Resident bytes of the auction's precomputed distance-field cache
    /// (0 under the static policy) — for bench memory accounting.
    pub fn auction_cache_bytes(&self) -> usize {
        self.auction.as_deref().map_or(0, |a| a.fields.bytes())
    }

    /// Test hook: force the assignment pass to run on every executed
    /// tick instead of skipping provably-no-op ones. The dirty-set
    /// property test drives one simulation with the skip disabled as the
    /// always-run oracle and compares it tick for tick.
    #[doc(hidden)]
    pub fn disable_auction_dirty_skip(&mut self) {
        if let Some(auc) = self.auction.as_deref_mut() {
            auc.dirty_skip = false;
        }
    }

    /// Runs until `config.ticks` and returns the final report.
    ///
    /// # Errors
    ///
    /// [`SimError::Pipeline`] if a window replan fails.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        self.advance_until(self.config.ticks)?;
        Ok(self.report())
    }

    /// Runs `n` more ticks (for tests that interleave assertions).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_ticks(&mut self, n: u64) -> Result<(), SimError> {
        self.advance_until(self.t.saturating_add(n))
    }

    /// Runs to `config.ticks` like [`run`](Self::run), but supervised:
    /// between chunks of at most `chunk` simulated ticks the `control`
    /// progress counter advances by the ticks just covered (elided ticks
    /// included — progress is simulated time, monotone toward
    /// `config.ticks`) and cancellation is checked, so a cancel request is
    /// observed within one chunk of simulated work.
    ///
    /// Chunking is unobservable in the result: the engine's stepping is
    /// exactly resumable (this is the same entry point
    /// [`run_ticks`](Self::run_ticks) uses), so an uncancelled supervised
    /// run returns a report byte-identical to [`run`](Self::run). A
    /// cancelled run returns the report at the point it stopped — still a
    /// valid mid-run report, but callers (e.g. the `wsp-server` job
    /// engine) typically discard it.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_controlled(
        &mut self,
        control: &wsp_core::RunControl,
        chunk: u64,
    ) -> Result<SimReport, SimError> {
        let chunk = chunk.max(1);
        while self.t < self.config.ticks && !control.is_cancelled() {
            let target = self.config.ticks.min(self.t.saturating_add(chunk));
            let before = self.t;
            self.advance_until(target)?;
            control.add_progress(self.t - before);
        }
        Ok(self.report())
    }

    /// Advances simulated time to `until`, executing forced ticks and
    /// (under the event engine) skipping provably quiescent stretches.
    fn advance_until(&mut self, until: u64) -> Result<(), SimError> {
        while self.t < until {
            if self.sleep.sleeping == self.pos.len() {
                let forced = self.next_forced_tick();
                if forced > self.t {
                    match self.config.engine {
                        SimEngine::Event => {
                            self.elide_to(forced.min(until));
                            continue;
                        }
                        // The reference engine executes the tick anyway
                        // and only keeps the elision ledger honest.
                        SimEngine::Reference => self.counters.ticks_elided += 1,
                    }
                }
            }
            self.step_executed()?;
        }
        Ok(())
    }

    /// The earliest tick at or after `self.t` that must be executed: the
    /// window-boundary tick, the next task arrival, the next stall or
    /// fault firing, the next outage/closure expiry, the next queued
    /// wake-up / crossing check, and — while a replan is pending
    /// (requested by a stray rejoin or held open by a frozen sleeper
    /// past its lag crossing) — the tick the minimum replan gap expires.
    fn next_forced_tick(&self) -> u64 {
        let mut forced = self.window_start + self.window_len as u64 - 1;
        if let Some(t) = self.stream.next_arrival() {
            forced = forced.min(t);
        }
        if let Some(t) = self.deviations.next_fire() {
            forced = forced.min(t);
        }
        if let Some(t) = self.faults.next_fire() {
            forced = forced.min(t);
        }
        // Fault expiries must execute: a re-opened station or corridor
        // changes assignment and routing outcomes on that very tick.
        // (Breakdown recoveries ride the stall wake-ups in the queue.)
        if self.dark_active > 0 {
            for &u in &self.dark_until {
                if u > self.t {
                    forced = forced.min(u);
                }
            }
        }
        for &v in &self.closed_cells {
            let u = self.closed_until[v.index()];
            if u > self.t {
                forced = forced.min(u);
            }
        }
        if self.replan_requested || self.sleep.frozen_over_replan > 0 {
            let gap = (self.last_replan + self.config.min_replan_gap).saturating_sub(1);
            forced = forced.min(gap);
        }
        if let Some(t) = self.queue.next_event(self.t, forced) {
            forced = forced.min(t);
        }
        forced.max(self.t)
    }

    /// Skips `target - t` fully quiescent ticks in O(1) per counter
    /// (plus O(agents) per tick when recording): every agent waits,
    /// sleeping carriers keep carrying, nothing else can change.
    fn elide_to(&mut self, target: u64) {
        let n = self.pos.len() as u64;
        let k = target - self.t;
        self.counters.ticks += k;
        self.counters.ticks_elided += k;
        self.counters.waits += k * n;
        self.counters.carrying_ticks += k * self.sleep.sleeping_carriers;
        if let Some(plan) = self.executed.as_mut() {
            for _ in 0..k {
                for a in 0..n as usize {
                    plan.push_state(
                        a,
                        AgentState {
                            at: self.pos[a],
                            carry: self.carry[a].map_or(Carry::Empty, Carry::Product),
                        },
                    );
                }
            }
        }
        self.t = target;
    }

    /// Largest lag any *sleeping* agent has analytically accrued up to
    /// (not including) tick `self.t`. Sleep lag is non-decreasing, so the
    /// peak is the latest value; folding this at replans and into
    /// [`report`](Self::report) reproduces exactly what the reference
    /// sweep folds tick by tick.
    fn pending_sleep_lag(&self) -> u64 {
        let elapsed = self.t.saturating_sub(self.window_start) as usize;
        let mut worst = 0usize;
        for a in 0..self.pos.len() {
            if !self.sleep.is_awake(a) {
                let settled = self.sleep.settled_cursor(a, self.t, self.window_len);
                worst = worst.max(elapsed.saturating_sub(settled));
            }
        }
        worst as u64
    }

    /// Pops every event due at tick `t`. Valid wake-ups re-activate their
    /// agent (the event engine materializes the settled cursor; the
    /// reference engine asserts it matches the truth); valid crossing
    /// checks flip the frozen sleeper's over-replan flag. Stale payloads
    /// (sequence mismatch) pop silently.
    fn pop_due_events(&mut self, t: u64) {
        let mut due = std::mem::take(&mut self.due_buf);
        self.queue.drain_due(t, |payload| due.push(payload));
        for payload in due.drain(..) {
            let (is_check, a, seq) = event::unpack(payload);
            if self.sleep.is_awake(a) || self.sleep.seq(a) != seq {
                continue;
            }
            if is_check {
                if self.sleep.mode(a) == SleepMode::Frozen && self.sleep.mark_over_replan(a) {
                    self.counters.events_processed += 1;
                }
            } else {
                self.wake(a, t);
                self.counters.events_processed += 1;
            }
        }
        self.due_buf = due;
    }

    /// Wakes `agent` at tick `t`, settling its cursor and banking the
    /// lag peak its sleep accrued (the reference sweep folded it tick by
    /// tick; sleep lag is monotone, so the final value is the peak — and
    /// it must be banked *here* because the wake tick's own fold skips
    /// the agent if a repair gets spliced onto it this very tick).
    fn wake(&mut self, agent: usize, t: u64) {
        let settled = self.sleep.settled_cursor(agent, t, self.window_len);
        match self.config.engine {
            SimEngine::Event => self.cursor[agent] = settled,
            SimEngine::Reference => debug_assert_eq!(
                settled, self.cursor[agent],
                "virtual sleep of agent {agent} diverged from the reference sweep at t={t}"
            ),
        }
        // Policy (not `self.auction.is_none()`): assignment temporarily
        // takes the auction state out of its Option while it runs, and it
        // wakes agents from inside that window — the Option test would
        // wrongly bank plan lag for them.
        if self.config.assign.policy == AssignPolicy::Static {
            let elapsed = t.saturating_sub(self.window_start) as usize;
            let slept_lag = elapsed.saturating_sub(settled) as u64;
            self.counters.max_lag = self.counters.max_lag.max(slept_lag);
        }
        self.sleep.wake(agent, self.carry[agent].is_some());
        self.granted[agent] = false;
        if let Some(auc) = self.auction.as_deref_mut() {
            // A wake changes the eligible pool (run_assignment's own
            // winner-wakes happen while the state is taken out of the
            // Option and are covered by the commit clearing the clean
            // flag instead).
            auc.dirty = true;
        }
    }

    /// Settles every sleeping agent's cursor in place (without waking)
    /// so an outside observer — the repair projector — sees current
    /// state. Queued wake-ups stay valid.
    fn settle_sleepers(&mut self, t: u64) {
        if self.sleep.sleeping == 0 {
            return;
        }
        for a in 0..self.pos.len() {
            if !self.sleep.is_awake(a) {
                let settled = self.sleep.rebase(a, t, self.window_len);
                match self.config.engine {
                    SimEngine::Event => self.cursor[a] = settled,
                    SimEngine::Reference => debug_assert_eq!(
                        settled, self.cursor[a],
                        "virtual sleep of agent {a} diverged at repair projection, t={t}"
                    ),
                }
            }
        }
    }

    /// Whether `agent`'s position matches its window-plan cursor cell (the
    /// precondition for following the plan).
    fn aligned(&self, agent: usize) -> bool {
        self.window_plan
            .state(agent, self.cursor[agent])
            .is_some_and(|s| s.at == self.pos[agent])
    }

    fn component_of(&self, v: VertexId) -> Option<wsp_traffic::ComponentId> {
        self.instance.traffic.component_of(v)
    }

    /// Snapshot the *actual* runtime state and realize the next window
    /// from it through the pipeline's realize stage.
    fn replan(&mut self) -> Result<(), SimError> {
        let t = self.t;
        // Sleep lag folds lazily; bank the accrued peak before the replan
        // wipes the ledger (cursors need no materializing — they reset to
        // zero below and the snapshots don't read them).
        if self.sleep.sleeping > 0 && self.config.assign.policy == AssignPolicy::Static {
            self.counters.max_lag = self.counters.max_lag.max(self.pending_sleep_lag());
        }
        self.sleep.reset();
        self.queue.clear(t);
        // Under the auction policy agents execute missions instead of the
        // window plan, so the realize stage is told to treat every agent
        // as detached: the window realizes with all of them parked as
        // static obstacles and the replan machinery (boundary cadence,
        // ledger snapshots, counters) keeps running unchanged.
        let detached = self.auction.is_some();
        if let Some(auc) = self.auction.as_deref_mut() {
            // The replan wakes every agent (sleep ledger reset) — the
            // eligible pool changes, so the next pass must really run.
            auc.dirty = true;
        }
        let snapshots: Vec<AgentSnapshot> = (0..self.pos.len())
            .map(|a| AgentSnapshot {
                cycle: self.cycle_of[a],
                step: self.step_of[a],
                pos: self.pos[a],
                carry: self.carry[a],
                advance_t: self.advance_t[a],
                detached,
            })
            .collect();
        self.plan_ledger.clone_from(&self.ledger);
        let out = self.pipeline.realize_window(
            self.instance,
            &self.cycles,
            t as usize,
            self.window_len,
            &snapshots,
            &mut self.plan_ledger,
        )?;
        self.window_plan = out.plan;
        self.first_change = out.first_change;
        self.window_start = t;
        self.cursor.fill(0);
        self.last_replan = t;
        self.replan_requested = false;
        self.counters.replans += 1;
        self.counters.events_processed += 1;
        // Repairs of on-component agents are healed by the replan itself;
        // off-component agents keep their detour but now rejoin as strays
        // (park until the next replan re-anchors them).
        for a in 0..self.pos.len() {
            if self.repair[a].is_none() {
                continue;
            }
            let comp = self.cycles.cycles()[self.cycle_of[a]].steps()[self.step_of[a]].component;
            let on_component = self
                .instance
                .traffic
                .locate(self.pos[a])
                .is_some_and(|(owner, _)| owner == comp);
            if on_component {
                self.repair[a] = None;
            } else if let Some(r) = self.repair[a].as_mut() {
                r.rejoin_cursor = STRAY_REJOIN;
            }
        }
        Ok(())
    }

    /// Advances one tick (which the event engine may elide outright when
    /// every agent is asleep and nothing is scheduled — observable state
    /// is identical either way).
    ///
    /// # Errors
    ///
    /// [`SimError::Pipeline`] if the tick ends on a window boundary and
    /// the replan fails.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.advance_until(self.t + 1)
    }

    /// Executes one tick for real: both engines share this body, the only
    /// difference being the processing domain (`active`) it sweeps —
    /// the awake set under [`SimEngine::Event`], every agent under
    /// [`SimEngine::Reference`].
    fn step_executed(&mut self) -> Result<(), SimError> {
        let t = self.t;
        let n = self.pos.len();
        let reference = self.config.engine == SimEngine::Reference;

        // 0. Scheduler: pop due wake-ups and crossing checks.
        self.pop_due_events(t);

        // 1. Arrivals. Under the auction policy tasks land in the global
        // assignment queue instead of the per-product execution queues.
        for task in self.stream.arrivals_at(t) {
            if let Some(auc) = self.auction.as_mut() {
                auc.pending.push_back(PendingTask {
                    product: task.product,
                    arrival: task.arrival,
                });
                auc.dirty = true;
            } else {
                self.queues[task.product.index()].push_back(task.arrival);
            }
            self.counters.injected += 1;
            self.counters.queued += 1;
            self.counters.events_processed += 1;
        }

        // 2. Deviations. A stall ends a victim's sleep: its remaining
        // ticks would no longer be cursor-advancing no-ops.
        self.stall_buf.clear();
        let buf = &mut self.stall_buf;
        self.deviations.fire_at(t, |s| buf.push(s));
        for i in 0..self.stall_buf.len() {
            let s = self.stall_buf[i];
            let until = t + u64::from(s.ticks);
            self.stall_until[s.agent] = self.stall_until[s.agent].max(until);
            self.counters.stalls_injected += 1;
            self.counters.stall_ticks_injected += u64::from(s.ticks);
            self.counters.events_processed += 1;
            if let Some(auc) = self.auction.as_deref_mut() {
                // Eligibility (`t >= stall_until`) just changed.
                auc.dirty = true;
            }
            if !self.sleep.is_awake(s.agent) {
                self.wake(s.agent, t);
            }
        }

        // 2f. Structural faults: expire elapsed outages and closures
        // first (a resource with `until == t` is open *at* `t`, the
        // stall convention), then fire this tick's seeded fault events.
        // Fires and expiries land only on forced ticks and are applied
        // identically by both engines, which is what keeps elision and
        // the auction's dirty-set skip sound with chaos on.
        if self.config.faults.enabled() {
            self.expire_faults(t);
            self.fault_buf.clear();
            let buf = &mut self.fault_buf;
            self.faults.fire_at(t, |e| buf.push(e));
            for i in 0..self.fault_buf.len() {
                let e = self.fault_buf[i];
                self.apply_fault(e, t);
            }
        }

        // 2c. Auction task assignment (both engines, identically: its
        // decisions are a pure function of the queue and agent states).
        // Runs before the active set is built so fresh assignees are
        // swept — and can move — this very tick. Skipped outright when
        // the pass is provably a no-op (see [`Self::auction_phase_skippable`]):
        // this is what makes quiet stretches O(dirty work) instead of
        // O(ticks), and — with every idle agent asleep — lets the event
        // engine elide them entirely.
        if self.auction.is_some() && !self.auction_phase_skippable() {
            self.run_assignment(t);
        }

        // 2b. The processing domain: awake agents (ascending), or every
        // agent under the reference sweep. Either way the *active* count
        // this tick is agents-minus-sleepers.
        self.active.clear();
        if reference {
            self.active.extend(0..n as u32);
        } else {
            for a in 0..n {
                if self.sleep.is_awake(a) {
                    self.active.push(a as u32);
                }
            }
            debug_assert_eq!(self.active.len(), n - self.sleep.sleeping);
        }
        self.counters.active_agent_ticks += (n - self.sleep.sleeping) as u64;

        // 3. MAPF catch-up repair. Auction agents don't follow the
        // window plan, so there is no schedule to catch up to — the
        // candidate filter would reject everyone anyway; skip the scan.
        if self.config.repair.enabled && self.auction.is_none() {
            self.try_repairs(t);
        }

        // 4. Desired moves.
        self.movers.clear();
        for cell in self.claimed_cells.drain(..) {
            self.claimed[cell as usize] = false;
        }
        for i in 0..self.active.len() {
            let a = self.active[i] as usize;
            self.granted[a] = false;
            let d = if t < self.stall_until[a] {
                self.pos[a]
            } else if let Some(auc) = self.auction.as_deref() {
                // Mission route next hop; idle auction agents park.
                auc.missions[a]
                    .as_ref()
                    .map_or(self.pos[a], |m| m.desired(self.pos[a]))
            } else if let Some(r) = &self.repair[a] {
                if r.at + 1 < r.path.len() {
                    r.path[r.at + 1]
                } else {
                    self.pos[a]
                }
            } else if self.aligned(a) && self.cursor[a] < self.window_len {
                self.window_plan
                    .state(a, self.cursor[a] + 1)
                    .expect("cursor below horizon")
                    .at
            } else {
                self.pos[a]
            };
            // A move into a closed corridor cell is vetoed into a wait:
            // missions hit their blocked → reroute → wedge path, plan
            // followers lag and catch up via repair or replan. The gate
            // only ever turns moves into stays — stationary (and so
            // sleeping) agents are untouched, which keeps every sleep
            // contract intact.
            let d = if d != self.pos[a] && self.closed_until[d.index()] > t {
                self.pos[a]
            } else {
                d
            };
            self.desired[a] = d;
            if reference && !self.sleep.is_awake(a) {
                // Oracle check: a virtually sleeping agent must be
                // exactly as quiescent as its sleep mode promised.
                debug_assert_eq!(
                    d, self.pos[a],
                    "virtually sleeping agent {a} wanted to move at t={t}"
                );
            }
            if d != self.pos[a] {
                self.movers.push(a);
            }
        }

        // 5. Vacancy-chain grants, O(movers): a move is granted when its
        // target is unclaimed and either empty or freed by another granted
        // move. Movers into occupied cells register as waiters on the
        // cell; every grant then wakes the lowest-indexed waiter of the
        // freed cell, so convoy chains thousands of agents long resolve in
        // one linear sweep instead of a quadratic fixpoint. Pure cycles
        // (incl. head-on swaps) can never self-activate, so only
        // conflict-free chains execute — collision freedom by
        // construction, at any deviation load.
        for cell in self.waiter_cells.drain(..) {
            self.waiter_head[cell as usize] = NO_INDEX;
            self.waiter_tail[cell as usize] = NO_INDEX;
        }
        self.grant_queue.clear();
        for &a in &self.movers {
            let v = self.desired[a];
            let vi = v.index();
            if self.claimed[vi] {
                // Already granted away to an earlier mover: dead this tick.
                continue;
            }
            if self.occupant[vi] == NO_INDEX {
                self.granted[a] = true;
                self.claimed[vi] = true;
                self.claimed_cells.push(v.0);
                self.grant_queue.push(a);
            } else {
                // Waiter on an occupied cell, appended in ascending agent
                // order (movers are scanned ascending).
                self.waiter_next[a] = NO_INDEX;
                if self.waiter_head[vi] == NO_INDEX {
                    self.waiter_head[vi] = a as u32;
                    self.waiter_cells.push(v.0);
                } else {
                    self.waiter_next[self.waiter_tail[vi] as usize] = a as u32;
                }
                self.waiter_tail[vi] = a as u32;
            }
        }
        let mut qi = 0;
        while qi < self.grant_queue.len() {
            let a = self.grant_queue[qi];
            qi += 1;
            let freed = self.pos[a];
            let head = self.waiter_head[freed.index()];
            if head != NO_INDEX && !self.claimed[freed.index()] {
                let b = head as usize;
                self.granted[b] = true;
                self.claimed[freed.index()] = true;
                self.claimed_cells.push(freed.0);
                self.grant_queue.push(b);
            }
        }

        // 6. Apply moves (vacate first, then occupy, so chains are safe).
        for &a in &self.movers {
            if self.granted[a] {
                self.occupant[self.pos[a].index()] = NO_INDEX;
            }
        }
        for &a in &self.movers {
            if self.granted[a] {
                self.occupant[self.desired[a].index()] = a as u32;
            }
        }

        // 7. Per-agent advancement, events, counters, and the per-change
        // trajectory checksum (ascending agent order keeps the digest
        // canonical; agents outside the domain can contribute no change
        // by construction, so the two engines write identical streams).
        let mut max_lag = 0u64;
        for i in 0..self.active.len() {
            let a = self.active[i] as usize;
            let old = self.pos[a];
            let old_carry = self.carry[a];
            let moved = self.granted[a];
            if moved {
                self.pos[a] = self.desired[a];
                self.counters.moves += 1;
            } else {
                self.counters.waits += 1;
            }

            if t < self.stall_until[a] {
                // Frozen: no cursor/repair/mission progress, no events.
            } else if self.auction.is_some() {
                self.step_mission(a, old, moved, t);
            } else if self.repair[a].is_some() {
                let done = {
                    let r = self.repair[a].as_mut().expect("checked");
                    let wanted_wait = r.at + 1 >= r.path.len() || r.path[r.at + 1] == old;
                    if moved || wanted_wait {
                        r.at = (r.at + 1).min(r.path.len() - 1);
                    }
                    r.at + 1 >= r.path.len() && self.pos[a] == *r.path.last().expect("non-empty")
                };
                if done {
                    let rejoin = self.repair[a].as_ref().expect("checked").rejoin_cursor;
                    self.repair[a] = None;
                    self.counters.events_processed += 1;
                    if rejoin == STRAY_REJOIN {
                        // Parked off-plan; ask for a replan to re-anchor.
                        self.replan_requested = true;
                    } else {
                        self.cursor[a] = rejoin;
                    }
                }
            } else if let Some(cur) = self.window_plan.state(a, self.cursor[a]) {
                if cur.at == old && self.cursor[a] < self.window_len {
                    let next = self
                        .window_plan
                        .state(a, self.cursor[a] + 1)
                        .expect("below horizon");
                    let advanced = next.at == old || moved;
                    if advanced {
                        self.apply_carry_event(a, cur.carry, next.carry, old, t);
                        if next.at != old {
                            let hop = self.component_of(next.at) != self.component_of(old);
                            if hop {
                                let len = self.cycles.cycles()[self.cycle_of[a]].steps().len();
                                self.step_of[a] = (self.step_of[a] + 1) % len;
                                self.advance_t[a] = (t + 1) as i64;
                            }
                        }
                        self.cursor[a] += 1;
                    }
                }
            }

            if self.carry[a].is_some() {
                self.counters.carrying_ticks += 1;
            }
            // Lag of plan-following agents (repairing/stray agents are
            // re-anchored by rejoin or replan instead; auction agents
            // don't follow the plan at all, so their lag is undefined
            // and `max_lag` stays 0 by contract). Sleeping agents are
            // absent here under the event engine; their (monotone) lag
            // folds at wake-up, replan, or report time instead.
            if self.config.assign.policy == AssignPolicy::Static && self.repair[a].is_none() {
                let scheduled = (t + 1).saturating_sub(self.window_start) as usize;
                let lag = scheduled.saturating_sub(self.cursor[a]) as u64;
                max_lag = max_lag.max(lag);
            }
            // Checksum the state *change*, if any, at t + 1. Quiescent
            // agents write nothing, which is exactly what lets elided
            // ticks leave the digest untouched.
            if self.pos[a] != old || self.carry[a] != old_carry {
                self.checksum.write(((t + 1) << 21) | a as u64);
                self.checksum.write(
                    (u64::from(self.pos[a].0) << 32)
                        | self.carry[a].map_or(0, |p| u64::from(p.0) + 1),
                );
            }
        }
        self.counters.max_lag = self.counters.max_lag.max(max_lag);

        // 8. Sleeping agents under the event engine: bulk-account their
        // waits and carries; record everyone at t + 1 when asked to.
        if !reference && self.sleep.sleeping > 0 {
            self.counters.waits += self.sleep.sleeping as u64;
            self.counters.carrying_ticks += self.sleep.sleeping_carriers;
        }
        if let Some(plan) = self.executed.as_mut() {
            for a in 0..n {
                plan.push_state(
                    a,
                    AgentState {
                        at: self.pos[a],
                        carry: self.carry[a].map_or(Carry::Empty, Carry::Product),
                    },
                );
            }
        }

        self.counters.ticks += 1;
        debug_assert!(
            self.counters.conserved(),
            "task conservation violated at t={}: {} injected != {} completed + {} in flight + {} queued",
            t,
            self.counters.injected,
            self.counters.completed,
            self.counters.in_flight,
            self.counters.queued,
        );

        // 8b. Apply deferred yield-nudges: blocked mission agents asked
        // parked blockers to drift clear. Applied here — after the
        // sweep's wait/carry accounting — so waking a sleeping blocker
        // cannot skew this tick's bulk bookkeeping; the buffer order is
        // the sweep's ascending blocked-agent order, identical under
        // both engines (only mission agents, always awake, file nudges).
        if self.auction.is_some() && !self.nudge_buf.is_empty() {
            self.apply_nudges(t);
        }

        // 9. Window boundary / early replan (boundaries are mandatory;
        // early replans respect the minimum gap). The frozen-crossing
        // count stands in for sleeping agents whose lag passed the
        // threshold — the awake sweep would have seen exactly them.
        self.t = t + 1;
        let boundary = (self.t - self.window_start) as usize >= self.window_len;
        let early = (self.replan_requested
            || (self.config.replan_lag > 0 && max_lag as usize >= self.config.replan_lag)
            || self.sleep.frozen_over_replan > 0)
            && self.t - self.last_replan >= self.config.min_replan_gap;
        if boundary || early {
            self.replan()?;
        } else {
            // 10. Sleep decisions for the agents just processed (under
            // the reference sweep this books the sleep virtually; agents
            // stay in the domain). After a replan everyone stays awake
            // for the fresh window's first tick instead.
            for i in 0..self.active.len() {
                let a = self.active[i] as usize;
                if self.sleep.is_awake(a) {
                    if self.auction.is_some() {
                        self.maybe_sleep_auction(a);
                    } else {
                        self.maybe_sleep(a);
                    }
                }
            }
        }
        Ok(())
    }

    /// Auction assignment phase, run identically by both engines at the
    /// top of every executed tick: one rotation over the pending queue
    /// matching each task to its cheapest `(station, site)` pair and the
    /// nearest eligible agent, with same-product batching; then, when
    /// the queue is drained and an agent just went idle, an idle-
    /// rebalance pass staging agents near high-pressure stations.
    ///
    /// Everything here is a pure index-deterministic function of the
    /// queue, the agent states, and the tick: candidate order is agent
    /// order, winners come from [`select_agent`]'s `(cost, agent)`
    /// minimum, and unassignable tasks rotate to the queue's back in
    /// arrival order. No wall clock, no thread count — and no per-tick
    /// work caps, so elided quiescent stretches provably contain no
    /// assignment the reference sweep would have made (see
    /// [`maybe_sleep_auction`](Self::maybe_sleep_auction) and the
    /// dirty-set skip in [`auction_phase_skippable`](Self::auction_phase_skippable)).
    ///
    /// On exit the pass records whether it was *clean* — committed
    /// nothing and left the queue in arrival order (a full dry rotation
    /// or an immediate no-eligible-agents bail) — which, with the dirty
    /// flag staying clear, licenses skipping the next pass outright.
    fn run_assignment(&mut self, t: u64) {
        let Some(mut auc) = self.auction.take() else {
            return;
        };
        let cfg = self.config.assign.clone();
        let graph = self.instance.warehouse.graph();
        let n = self.pos.len();
        auc.dirty = false;
        let mut rotations = 0usize;
        let mut committed = false;

        let mut rounds = auc.pending.len();
        'tasks: while rounds > 0 {
            rounds -= 1;
            let Some(&task) = auc.pending.front() else {
                break;
            };
            let Some((q, site)) = auc.pick_station_site(task.product, cfg.station_bias) else {
                // No stocked, field-reachable site right now: rotate the
                // task to the back and look at the next one.
                let task = auc.pending.pop_front().expect("front checked");
                auc.pending.push_back(task);
                rotations += 1;
                continue;
            };
            // The nearest eligible agent by undirected BFS distance from
            // the pickup site, probing escalating neighbourhood caps so
            // the common case never scans the whole floor; each
            // escalation resumes the previous cap's frontier instead of
            // re-running the BFS from scratch.
            self.bids.clear();
            let mut probe = None;
            for cap in [32u32, 128, 512, u32::MAX] {
                match probe.as_mut() {
                    None => {
                        probe = Some(graph.bfs_bounded_begin(
                            site,
                            cap,
                            &mut auc.probe_dist,
                            &mut auc.probe_touched,
                        ));
                    }
                    Some(cursor) => graph.bfs_bounded_resume(
                        cursor,
                        cap,
                        &mut auc.probe_dist,
                        &mut auc.probe_touched,
                    ),
                }
                self.bids.clear();
                let mut any_eligible = false;
                for a in 0..n {
                    // The carry check bars a recovered agent still
                    // hauling a shed task's stranded unit from taking a
                    // new pickup; fault-free it is vacuous (an agent
                    // only carries inside a task mission or with a drop
                    // action pending, and neither is replaceable).
                    let eligible = t >= self.stall_until[a]
                        && self.carry[a].is_none()
                        && auc.missions[a].as_ref().is_none_or(Mission::replaceable);
                    if !eligible {
                        continue;
                    }
                    any_eligible = true;
                    let d = auc.probe_dist[self.pos[a].index()];
                    if d != u32::MAX {
                        self.bids.push(AgentBid {
                            agent: a as u32,
                            cost: d,
                        });
                    }
                }
                if !any_eligible {
                    // Eligibility is task-independent: nobody can take
                    // any task this tick.
                    break 'tasks;
                }
                if !self.bids.is_empty() {
                    break;
                }
            }
            // Auction order over the probed slate; a winner whose field
            // route is missing (rare: the field strongly connects these
            // maps) or longer than the route cap (a pathological
            // floor-width detour) falls through to the next-best bid.
            let mut commit = None;
            while let Some(bid) = select_agent(&self.bids) {
                self.bids.retain(|b| b.agent != bid.agent);
                let from = self.pos[bid.agent as usize];
                if let Some(path) = auc
                    .route(
                        graph,
                        from,
                        site,
                        None,
                        ClosedSet {
                            until: &self.closed_until,
                            t,
                        },
                    )
                    .filter(|p| p.len() <= cfg.route_cap as usize)
                {
                    commit = Some((bid.agent as usize, path));
                    break;
                }
            }
            let Some((a, path)) = commit else {
                // Eligible agents exist but none can reach this site;
                // rotate and retry later (stock or topology may change).
                let task = auc.pending.pop_front().expect("front checked");
                auc.pending.push_back(task);
                rotations += 1;
                continue;
            };
            committed = true;

            // Commit: reserve stock, build the leg list (batching queued
            // same-product tasks onto this agent), install the mission.
            auc.pending.pop_front();
            auc.reserved.remove_units(site, task.product, 1);
            auc.open[q as usize] += 1;
            let mut legs = VecDeque::with_capacity(2 * cfg.batch.max(1));
            legs.push_back(Leg {
                goal: site,
                action: LegAction::Pickup {
                    product: task.product,
                    arrival: task.arrival,
                },
            });
            legs.push_back(Leg {
                goal: auc.stations[q as usize],
                action: LegAction::Drop {
                    arrival: task.arrival,
                    station: q,
                },
            });
            self.counters.assignments_made += 1;
            self.counters.events_processed += 1;
            let mut q_prev = q;
            let mut extras = cfg.batch.saturating_sub(1);
            let mut i = 0;
            while extras > 0 && i < auc.pending.len() {
                if auc.pending[i].product != task.product {
                    i += 1;
                    continue;
                }
                let Some((q2, s2)) = auc.pick_followup(task.product, q_prev, cfg.station_bias)
                else {
                    break;
                };
                let extra = auc.pending.remove(i).expect("index in range");
                auc.reserved.remove_units(s2, task.product, 1);
                auc.open[q2 as usize] += 1;
                legs.push_back(Leg {
                    goal: s2,
                    action: LegAction::Pickup {
                        product: extra.product,
                        arrival: extra.arrival,
                    },
                });
                legs.push_back(Leg {
                    goal: auc.stations[q2 as usize],
                    action: LegAction::Drop {
                        arrival: extra.arrival,
                        station: q2,
                    },
                });
                self.counters.assignments_made += 1;
                self.counters.events_processed += 1;
                q_prev = q2;
                extras -= 1;
            }
            if let Some(qq) = auc.staged_of[a].take() {
                auc.staged[qq as usize] -= 1;
            }
            auc.missions[a] = Some(Mission {
                kind: MissionKind::Task,
                path,
                at: 0,
                legs,
                action: None,
                blocked: 0,
                wedged: false,
            });
            if !self.sleep.is_awake(a) {
                self.wake(a, t);
            }
        }

        // Idle rebalance: only when the queue is drained (pending tasks
        // outrank staging for every idle agent) and an agent went idle
        // since the last pass.
        if auc.pending.is_empty() && auc.idle_dirty {
            auc.idle_dirty = false;
            let per = cfg.rebalance_per_station as u32;
            if per > 0 && !auc.stations.is_empty() {
                let mut pool = 0u32;
                for a in 0..n {
                    if auc.missions[a].is_none()
                        && auc.staged_of[a].is_none()
                        && t >= self.stall_until[a]
                        && self.carry[a].is_none()
                    {
                        pool += 1;
                    }
                }
                let mut order: Vec<u16> = (0..auc.stations.len() as u16).collect();
                order.sort_unstable_by_key(|&q| {
                    (
                        auc.staged[q as usize],
                        std::cmp::Reverse(auc.open[q as usize]),
                        q,
                    )
                });
                'stations: for &q in &order {
                    if auc.dark[q as usize] {
                        // No point staging idle agents at a dark
                        // station; its backlog redistributes instead.
                        continue;
                    }
                    while auc.staged[q as usize] < per {
                        if pool == 0 {
                            break 'stations;
                        }
                        let anchor = auc.anchors[q as usize];
                        // The bid slate the retired escalating-cap BFS
                        // probes produced, reconstructed exactly from the
                        // anchor's cached full field: the slate is every
                        // eligible idle agent within the first cap that
                        // catches the nearest one (bounded BFS yields
                        // exact distances within its cap, so field
                        // lookups are value-identical).
                        self.bids.clear();
                        let field = auc.fields.anchor_field(q as usize);
                        let mut dmin = u32::MAX;
                        for a in 0..n {
                            if auc.missions[a].is_some()
                                || auc.staged_of[a].is_some()
                                || t < self.stall_until[a]
                                || self.carry[a].is_some()
                            {
                                continue;
                            }
                            dmin = dmin.min(field[self.pos[a].index()]);
                        }
                        if dmin != u32::MAX {
                            let cap = *[32u32, 128, 512, u32::MAX]
                                .iter()
                                .find(|&&c| dmin <= c)
                                .expect("u32::MAX cap catches everything");
                            for a in 0..n {
                                if auc.missions[a].is_some()
                                    || auc.staged_of[a].is_some()
                                    || t < self.stall_until[a]
                                    || self.carry[a].is_some()
                                {
                                    continue;
                                }
                                let d = field[self.pos[a].index()];
                                if d <= cap {
                                    self.bids.push(AgentBid {
                                        agent: a as u32,
                                        cost: d,
                                    });
                                }
                            }
                        }
                        let mut commit = None;
                        while let Some(bid) = select_agent(&self.bids) {
                            self.bids.retain(|b| b.agent != bid.agent);
                            let from = self.pos[bid.agent as usize];
                            let closed = ClosedSet {
                                until: &self.closed_until,
                                t,
                            };
                            if let Some(path) = auc.route(graph, from, anchor, None, closed) {
                                commit = Some((bid.agent as usize, path));
                                break;
                            }
                        }
                        let Some((a, path)) = commit else {
                            // The remaining pool can't reach any anchor
                            // worth staging; stop the pass.
                            break 'stations;
                        };
                        auc.missions[a] = Some(Mission {
                            kind: MissionKind::Reposition(q),
                            path,
                            at: 0,
                            legs: VecDeque::new(),
                            action: None,
                            blocked: 0,
                            wedged: false,
                        });
                        auc.staged_of[a] = Some(q);
                        auc.staged[q as usize] += 1;
                        pool -= 1;
                        committed = true;
                        self.counters.rebalance_moves += 1;
                        self.counters.events_processed += 1;
                        if !self.sleep.is_awake(a) {
                            self.wake(a, t);
                        }
                    }
                }
            }
        }
        // Clean = nothing committed and the queue is back in arrival
        // order: either untouched (an immediate no-eligible bail before
        // any rotation) or rotated all the way around. A partial
        // rotation (bail after some site-less tasks already moved back)
        // leaves a reordered queue, so the next pass must really run.
        auc.pass_clean = !committed && (rotations == 0 || rotations == auc.pending.len());
        self.auction = Some(auc);
    }

    /// Whether this tick's assignment phase is provably a byte-identical
    /// no-op and may be skipped outright: the last pass was clean, no
    /// assignment input changed since (arrivals, sheds, drops, mission
    /// retirements, nudges, stalls, wakes, replans all set the dirty
    /// flag), and no awake agent carries a replaceable mission — those
    /// are eligible bidders whose positions (and so bid costs and route
    /// outcomes) change every tick. Awake *idle* agents park in place
    /// and awake task-mission agents are not bidders, so neither
    /// perturbs a dry pass. Both engines evaluate the same predicate,
    /// which keeps skipping — like elision — unobservable.
    fn auction_phase_skippable(&self) -> bool {
        let Some(auc) = self.auction.as_deref() else {
            return true;
        };
        if !auc.dirty_skip || auc.dirty || !auc.pass_clean {
            return false;
        }
        (0..self.pos.len()).all(|a| {
            !self.sleep.is_awake(a) || !auc.missions[a].as_ref().is_some_and(Mission::replaceable)
        })
    }

    /// Advances `agent`'s auction mission after the move phase: fires a
    /// carry action pending from last tick's arrival (on the *pre-move*
    /// cell, the plan checker's condition (3) convention), tracks route
    /// progress and blocking (yield-nudges and reroutes), pops legs on
    /// arrival, and retires the mission when the last leg is done. No-op
    /// for idle agents.
    fn step_mission(&mut self, a: usize, old: VertexId, moved: bool, t: u64) {
        let Some(mut auc) = self.auction.take() else {
            return;
        };
        let Some(mut m) = auc.missions[a].take() else {
            self.auction = Some(auc);
            return;
        };
        let graph = self.instance.warehouse.graph();

        // 1. Pending carry action fires on this transition.
        if let Some(act) = m.action.take() {
            match act {
                LegAction::Pickup { product, arrival } => {
                    debug_assert!(
                        self.ledger.units_at(old, product) > 0,
                        "assigned pickup of {product} at {old} with an empty ledger"
                    );
                    debug_assert!(self.carry[a].is_none(), "pickup while carrying");
                    self.ledger.remove_units(old, product, 1);
                    self.carry[a] = Some(product);
                    self.attached[a] = Some(arrival);
                    self.counters.queued -= 1;
                    self.counters.in_flight += 1;
                }
                LegAction::Drop { arrival, station } => {
                    debug_assert!(self.carry[a].is_some(), "drop while empty");
                    self.carry[a] = None;
                    self.attached[a] = None;
                    self.counters.delivered += 1;
                    self.counters.in_flight -= 1;
                    self.counters.record_latency(t + 1 - arrival);
                    let open = &mut auc.open[station as usize];
                    *open = open.saturating_sub(1);
                    auc.dirty = true;
                }
            }
        }

        // 2. Route progress / blocking.
        if moved {
            m.at += 1;
            debug_assert_eq!(m.path[m.at], self.pos[a], "mission route desync");
            m.blocked = 0;
            m.wedged = false;
        } else if m.at + 1 < m.path.len() {
            m.blocked += 1;
            let cfg = &self.config.assign;
            let want = m.path[m.at + 1];
            let b = self.occupant[want.index()];
            if m.blocked >= cfg.yield_after && b != NO_INDEX {
                // Deferred to phase 8b; idle blockers drift clear, moving
                // or stalled ones are filtered at application time.
                self.nudge_buf.push(b);
            }
            if m.blocked >= cfg.reroute_after {
                match m.kind {
                    MissionKind::Task => {
                        if m.blocked % cfg.reroute_after == 0 {
                            let goal = *m.path.last().expect("non-empty route");
                            let closed = ClosedSet {
                                until: &self.closed_until,
                                t,
                            };
                            match auc.route(graph, self.pos[a], goal, Some(want), closed) {
                                Some(path) if path.len() <= cfg.route_cap as usize => {
                                    m.path = path;
                                    m.at = 0;
                                    m.blocked = 0;
                                    m.wedged = false;
                                }
                                Some(_) => {
                                    // A detour this long means the direct
                                    // corridor is walled off by parked
                                    // agents; taking it would tour the
                                    // floor. Wedge instead: park frozen
                                    // and retry when something moves.
                                    m.wedged = true;
                                }
                                None => {}
                            }
                        }
                    }
                    // Staging and drifting are best-effort: park here.
                    MissionKind::Reposition(_) | MissionKind::Drift => {
                        m.path.truncate(m.at + 1);
                    }
                }
            }
        }

        // 3. Arrival at the route's end: pop the next leg (its action
        // fires on the next transition), plan the following hop, or
        // retire the mission.
        let mut done = false;
        if m.at + 1 >= m.path.len() && m.action.is_none() {
            match m.legs.pop_front() {
                Some(leg) => {
                    debug_assert_eq!(leg.goal, self.pos[a], "mission leg desync");
                    m.action = Some(leg.action);
                    if let Some(&Leg { goal, .. }) = m.legs.front() {
                        match auc
                            .route(
                                graph,
                                self.pos[a],
                                goal,
                                None,
                                ClosedSet {
                                    until: &self.closed_until,
                                    t,
                                },
                            )
                            .filter(|p| p.len() <= self.config.assign.route_cap as usize)
                        {
                            Some(path) => {
                                m.path = path;
                                m.at = 0;
                                m.blocked = 0;
                            }
                            None => {
                                // Defensive only: assignment verified
                                // field reachability for every leg. Shed
                                // the remaining legs back to the queue.
                                auc.dirty = true;
                                while let Some(l2) = m.legs.pop_front() {
                                    match l2.action {
                                        LegAction::Pickup { product, arrival } => {
                                            auc.pending
                                                .push_front(PendingTask { product, arrival });
                                        }
                                        LegAction::Drop { station, .. } => {
                                            let open = &mut auc.open[station as usize];
                                            *open = open.saturating_sub(1);
                                        }
                                    }
                                }
                                if let Some(LegAction::Pickup { product, arrival }) = m.action {
                                    // Its drop leg was just shed: don't
                                    // execute the pickup either.
                                    m.action = None;
                                    auc.pending.push_front(PendingTask { product, arrival });
                                }
                            }
                        }
                    }
                    if m.legs.is_empty() {
                        if matches!(m.action, Some(LegAction::Drop { .. })) {
                            // Final drop: walk off along the field while
                            // it fires, so the station clears for the
                            // next delivery instead of being parked on.
                            m.kind = MissionKind::Drift;
                            m.path = auc.drift_walk(
                                graph,
                                self.pos[a],
                                &self.occupant,
                                ClosedSet {
                                    until: &self.closed_until,
                                    t,
                                },
                            );
                            m.at = 0;
                            m.blocked = 0;
                        } else if m.action.is_none() {
                            done = true;
                        }
                    }
                }
                None => done = true,
            }
        }

        if done {
            self.counters.events_processed += 1;
            auc.idle_dirty = true;
            auc.dirty = true;
        } else {
            auc.missions[a] = Some(m);
        }
        self.auction = Some(auc);
    }

    /// Applies the yield-nudges deferred during phase 7: each still-idle,
    /// unstalled blocker gets a drift mission toward the next junction
    /// (waking it if asleep). Duplicates collapse on the mission check.
    fn apply_nudges(&mut self, t: u64) {
        let mut buf = std::mem::take(&mut self.nudge_buf);
        for &b in &buf {
            let b = b as usize;
            if t < self.stall_until[b] {
                continue;
            }
            let Some(mut auc) = self.auction.take() else {
                break;
            };
            if auc.missions[b].is_some() {
                self.auction = Some(auc);
                continue;
            }
            let path = auc.drift_walk(
                self.instance.warehouse.graph(),
                self.pos[b],
                &self.occupant,
                ClosedSet {
                    until: &self.closed_until,
                    t,
                },
            );
            let nudged = path.len() > 1;
            if nudged {
                auc.missions[b] = Some(Mission {
                    kind: MissionKind::Drift,
                    path,
                    at: 0,
                    legs: VecDeque::new(),
                    action: None,
                    blocked: 0,
                    wedged: false,
                });
                auc.dirty = true;
                self.counters.events_processed += 1;
            }
            self.auction = Some(auc);
            if nudged && !self.sleep.is_awake(b) {
                self.wake(b, t);
            }
        }
        buf.clear();
        self.nudge_buf = buf;
    }

    /// Sleep decision under the auction policy. Mission agents advance
    /// every tick and stay awake — except a wedged one (its reroute is
    /// cap-rejected), which parks frozen until a replan or stall retries
    /// it. Stalled agents freeze with a wake-up at the stall's end. Idle
    /// agents freeze when no assignable work could touch them next tick:
    /// either the pending queue is empty (the assignment pass runs only
    /// on executed ticks, so an idle sleeper next to a pending task
    /// would desynchronize the engines), or the last pass was clean and
    /// nothing has dirtied its inputs since — a re-run provably assigns
    /// nothing, so sleeping through it is safe. In both arms no agent
    /// may have gone idle this tick (the rebalance pass gets one
    /// executed tick to see them). Every wake path — assignment,
    /// rebalance, nudge, stall, boundary replan — runs identically under
    /// both engines, which is what keeps elision unobservable.
    fn maybe_sleep_auction(&mut self, agent: usize) {
        let auc = self.auction.as_deref().expect("auction engine");
        if let Some(m) = &auc.missions[agent] {
            if m.wedged && self.t >= self.stall_until[agent] {
                // Wedged mission: its reroute is rejected and its blocker
                // is not yielding. Park frozen (no event); the boundary
                // replan or a stall wakes it for the next retry.
                let carrying = self.carry[agent].is_some();
                self.sleep.sleep(
                    agent,
                    SleepMode::Frozen,
                    self.t,
                    self.cursor[agent],
                    carrying,
                );
                self.granted[agent] = false;
            }
            return;
        }
        let quiet = !auc.idle_dirty && (auc.pending.is_empty() || (auc.pass_clean && !auc.dirty));
        let from = self.t;
        let carrying = self.carry[agent].is_some();
        if from < self.stall_until[agent] {
            // Permanently broken agents (`NEVER`) file no wake-up: only
            // the boundary replan's ledger reset re-examines them.
            let wake = self.stall_until[agent];
            let seq =
                self.sleep
                    .sleep(agent, SleepMode::Frozen, from, self.cursor[agent], carrying);
            if wake != NEVER {
                self.queue.push(wake, event::pack(event::WAKE, agent, seq));
            }
            self.granted[agent] = false;
            return;
        }
        if quiet {
            // Frozen with no event: assignment, a stall, or the boundary
            // replan wakes it (the plan-exhausted precedent).
            self.sleep
                .sleep(agent, SleepMode::Frozen, from, self.cursor[agent], carrying);
            self.granted[agent] = false;
        }
    }

    /// Decides whether `agent` — just processed, currently awake — can
    /// sleep starting at tick `self.t`, and books the sleep plus its
    /// wake-up/crossing events if so. Every guard here exists to keep a
    /// sleeper's skipped ticks *provably* identical to what the reference
    /// sweep would have done (see [`crate::event`] for the contract).
    fn maybe_sleep(&mut self, agent: usize) {
        if self.repair[agent].is_some() {
            // Repairing agents advance their detour every tick.
            return;
        }
        let from = self.t;
        let cursor = self.cursor[agent];
        let replan_lag = self.config.replan_lag;
        let elapsed = from.saturating_sub(self.window_start) as usize;
        let lag = elapsed.saturating_sub(cursor);
        // An agent at or past the early-replan threshold must stay in the
        // per-tick lag fold that re-arms the (possibly gap-deferred)
        // replan trigger.
        if replan_lag > 0 && lag >= replan_lag {
            return;
        }
        let carrying = self.carry[agent].is_some();
        if from < self.stall_until[agent] {
            // Stalled: frozen until the stall ends; if its growing lag
            // would cross the replan threshold first, file the check. A
            // permanent breakdown (`NEVER`) files no wake-up at all.
            let wake = self.stall_until[agent];
            let seq = self
                .sleep
                .sleep(agent, SleepMode::Frozen, from, cursor, carrying);
            if wake != NEVER {
                self.queue.push(wake, event::pack(event::WAKE, agent, seq));
            }
            if replan_lag > 0 {
                let crossing = self.window_start + (cursor + replan_lag) as u64 - 1;
                if crossing < wake {
                    self.queue
                        .push(crossing, event::pack(event::REPLAN_CHECK, agent, seq));
                }
            }
            self.granted[agent] = false;
            return;
        }
        if self.aligned(agent) {
            if cursor >= self.window_len {
                // Plan exhausted: parked until the boundary replan, which
                // arrives before its lag could cross the threshold.
                self.sleep
                    .sleep(agent, SleepMode::Frozen, from, cursor, carrying);
                self.granted[agent] = false;
                return;
            }
            // A lagged aligned agent may become a repair candidate any
            // tick (its constant lag stays over the threshold while its
            // cooldown drains), so it must stay in the candidate scan.
            if self.config.repair.enabled && lag >= self.config.repair.lag_threshold {
                return;
            }
            match self.silent_run_len(agent, cursor) {
                Some(1) => {} // next tick already changes state
                Some(run) => {
                    let seq = self
                        .sleep
                        .sleep(agent, SleepMode::Silent, from, cursor, carrying);
                    self.queue
                        .push(from + run as u64 - 1, event::pack(event::WAKE, agent, seq));
                    self.granted[agent] = false;
                }
                None => {
                    // Stationary through the whole remaining window: the
                    // cursor analytically runs out and the boundary
                    // replan wakes it (no event needed; the lag crossing
                    // provably can't precede the boundary).
                    self.sleep
                        .sleep(agent, SleepMode::Silent, from, cursor, carrying);
                    self.granted[agent] = false;
                }
            }
            return;
        }
        // Unaligned (a stray parked off-plan): frozen until the next
        // replan re-anchors it, with its lag crossing filed.
        let seq = self
            .sleep
            .sleep(agent, SleepMode::Frozen, from, cursor, carrying);
        if replan_lag > 0 {
            let crossing = self.window_start + (cursor + replan_lag) as u64 - 1;
            self.queue
                .push(crossing, event::pack(event::REPLAN_CHECK, agent, seq));
        }
        self.granted[agent] = false;
    }

    /// Length of `agent`'s *silent run*: the smallest `j ≥ 1` whose
    /// window-plan state differs from the current one in position or
    /// carry (`None` if it stays identical through the window's end).
    /// For a fresh cursor this is exactly the realize stage's
    /// `first_change` schedule; otherwise a forward scan (amortized O(1)
    /// per tick: each scanned index is slept past before it is rescanned).
    fn silent_run_len(&self, agent: usize, cursor: usize) -> Option<usize> {
        debug_assert!(cursor < self.window_len);
        if cursor == 0 {
            let j = self.first_change[agent];
            return (j != u32::MAX).then_some(j as usize);
        }
        let pos = self.pos[agent];
        let carry = self
            .window_plan
            .state(agent, cursor)
            .expect("aligned cursor")
            .carry;
        for j in 1..=(self.window_len - cursor) {
            let s = self
                .window_plan
                .state(agent, cursor + j)
                .expect("within horizon");
            if s.at != pos || s.carry != carry {
                return Some(j);
            }
        }
        None
    }

    /// Applies an executed carry transition: stock debit + task matching.
    /// `at` is the vertex the action happened on (the *pre-move* cell, as
    /// in the plan checker's condition (3)); completion is stamped `t + 1`
    /// to match [`wsp_model::PlanStats::last_delivery`].
    fn apply_carry_event(
        &mut self,
        agent: usize,
        before: Carry,
        after: Carry,
        at: VertexId,
        t: u64,
    ) {
        match (before, after) {
            (Carry::Empty, Carry::Product(p)) => {
                debug_assert!(
                    self.ledger.units_at(at, p) > 0,
                    "executed pickup of {p} at {at} with an empty ledger"
                );
                self.ledger.remove_units(at, p, 1);
                self.carry[agent] = Some(p);
                if let Some(arrival) = self.queues[p.index()].pop_front() {
                    self.attached[agent] = Some(arrival);
                    self.counters.queued -= 1;
                    self.counters.in_flight += 1;
                }
            }
            (Carry::Product(p), Carry::Empty) => {
                self.carry[agent] = None;
                self.counters.delivered += 1;
                if let Some(arrival) = self.attached[agent].take() {
                    self.counters.in_flight -= 1;
                    self.counters.record_latency(t + 1 - arrival);
                } else if let Some(arrival) = self.queues[p.index()].pop_front() {
                    self.counters.queued -= 1;
                    self.counters.record_latency(t + 1 - arrival);
                } else {
                    self.counters.unmatched_deliveries += 1;
                }
            }
            (Carry::Product(p), Carry::Product(q)) => {
                debug_assert_eq!(p, q, "carried product mutated in the window plan");
            }
            (Carry::Empty, Carry::Empty) => {}
        }
    }

    /// Applies one fired [`FaultEvent`] — both engines, identically.
    fn apply_fault(&mut self, e: FaultEvent, t: u64) {
        self.counters.faults_injected += 1;
        self.counters.events_processed += 1;
        match e {
            FaultEvent::Breakdown { agent, until, .. } => {
                // A breakdown is a (possibly unbounded) stall: all the
                // stall machinery — parked desire, frozen sleep, repair
                // projection, grant-pass obstacle, auction ineligibility
                // — applies as-is. On top, the victim's assigned work is
                // shed so the rest of the fleet absorbs it.
                let was = self.stall_until[agent];
                if until == NEVER && was != NEVER {
                    self.counters.agents_lost += 1;
                }
                self.stall_until[agent] = was.max(until);
                self.shed_agent_tasks(agent, until == NEVER);
                if let Some(auc) = self.auction.as_deref_mut() {
                    // Eligibility (`t >= stall_until`) just changed.
                    auc.dirty = true;
                }
                if !self.sleep.is_awake(agent) {
                    self.wake(agent, t);
                }
            }
            FaultEvent::Outage { station, until, .. } => {
                let was = self.dark_until[station];
                if was <= t {
                    self.dark_active += 1;
                }
                self.dark_until[station] = was.max(until);
                if let Some(auc) = self.auction.as_deref_mut() {
                    // Dark stations take no new assignments; their
                    // queued tasks wait (rotating in the pending queue)
                    // and the `station_bias` pressure pushes fresh work
                    // toward the remaining stations. In-flight
                    // deliveries already en route still complete.
                    auc.dark[station] = true;
                    auc.dirty = true;
                }
            }
            FaultEvent::Closure {
                anchor,
                axis,
                until,
                ..
            } => {
                self.close_corridor(anchor, axis, until, t);
                if let Some(auc) = self.auction.as_deref_mut() {
                    // Route outcomes (commits, reroutes, drifts) changed.
                    auc.dirty = true;
                }
            }
        }
    }

    /// Re-opens every faulted resource whose span elapsed: a station or
    /// corridor with `until <= t` serves again *at* `t` (symmetric with
    /// stalls). Each re-opening dirties the auction — newly possible
    /// assignments and routes must be re-examined on this very tick,
    /// which is why expiries are forced ticks.
    fn expire_faults(&mut self, t: u64) {
        if self.dark_active > 0 {
            let live = self.dark_until.iter().filter(|&&u| u > t).count();
            if live < self.dark_active {
                self.dark_active = live;
                if let Some(auc) = self.auction.as_deref_mut() {
                    for (q, &u) in self.dark_until.iter().enumerate() {
                        auc.dark[q] = u > t;
                    }
                    auc.dirty = true;
                }
            }
        }
        if !self.closed_cells.is_empty() {
            let mut cells = std::mem::take(&mut self.closed_cells);
            let before = cells.len();
            cells.retain(|v| self.closed_until[v.index()] > t);
            if cells.len() < before {
                if let Some(auc) = self.auction.as_deref_mut() {
                    auc.dirty = true;
                }
            }
            self.closed_cells = cells;
        }
    }

    /// Expands a closure event to its concrete corridor: up to
    /// `closure_len` cells walked from the anchor along the seeded axis
    /// while grid edges continue, each marked closed until `until`.
    /// Overlapping closures max-merge their expiries.
    fn close_corridor(&mut self, anchor: usize, axis: u32, until: u64, t: u64) {
        let graph = self.instance.warehouse.graph();
        let (dx, dy): (i64, i64) = match axis % 4 {
            0 => (1, 0),
            1 => (0, 1),
            2 => (-1, 0),
            _ => (0, -1),
        };
        let len = self.config.faults.closure_len.max(1);
        let mut v = VertexId(anchor as u32);
        for step in 0u32.. {
            if self.closed_until[v.index()] <= t {
                // Not currently closed, so not in the list yet (expiry
                // retains exactly the still-closed cells).
                self.closed_cells.push(v);
            }
            self.closed_until[v.index()] = self.closed_until[v.index()].max(until);
            if step + 1 >= len {
                break;
            }
            let c = graph.coord(v);
            let nx = i64::from(c.x) + dx;
            let ny = i64::from(c.y) + dy;
            if nx < 0 || ny < 0 {
                break;
            }
            let Some(w) = graph.vertex_at(Coord::new(nx as u32, ny as u32)) else {
                break;
            };
            if !graph.has_edge(v, w) {
                break;
            }
            v = w;
        }
    }

    /// Sheds a broken-down agent's assigned tasks back to the queue in
    /// arrival order. Unexecuted pickups restore their stock reservation
    /// and re-queue; their drop legs release the station's open slot.
    /// The *carried* task (pickup executed, drop pending) is kept on a
    /// temporary breakdown — the unit physically rides the robot and is
    /// delivered after recovery — but re-queued on a permanent one: the
    /// unit strands on the dead robot and another agent re-picks the
    /// task from remaining stock (`in_flight → queued`, so the classic
    /// conservation identity never bends; `tasks_shed` counts every
    /// shed).
    fn shed_agent_tasks(&mut self, a: usize, permanent: bool) {
        let Some(mut auc) = self.auction.take() else {
            // Static policy: detach the carried task and re-queue it by
            // arrival. The agent's window plan still executes its drop
            // after recovery, which then completes the queue's new
            // front task instead (`apply_carry_event`'s unattached arm)
            // — late delivery, exact conservation.
            if let Some(arrival) = self.attached[a].take() {
                let product = self.carry[a].expect("attached implies carrying");
                let q = &mut self.queues[product.index()];
                let i = q.partition_point(|&x| x <= arrival);
                q.insert(i, arrival);
                self.counters.in_flight -= 1;
                self.counters.queued += 1;
                self.counters.tasks_shed += 1;
            }
            return;
        };
        if let Some(qq) = auc.staged_of[a].take() {
            auc.staged[qq as usize] -= 1;
        }
        if let Some(mut m) = auc.missions[a].take() {
            // Carried iff the next drop precedes the next pickup: either
            // the drop action is already pending, or the front leg is a
            // drop (legs strictly alternate pickup/drop per task).
            let carried = matches!(m.action, Some(LegAction::Drop { .. }))
                || (m.action.is_none()
                    && matches!(
                        m.legs.front(),
                        Some(Leg {
                            action: LegAction::Drop { .. },
                            ..
                        })
                    ));
            if carried && !permanent {
                // Keep exactly the pending delivery; shed the rest.
                let kept = if m.action.is_some() {
                    None
                } else {
                    m.legs.pop_front()
                };
                Self::shed_legs(&mut auc, &mut m, &mut self.counters);
                match kept {
                    Some(leg) => m.legs.push_back(leg),
                    // Only the pending drop action remains; stop walking
                    // the stale route toward the next (now shed) leg.
                    None => m.path.truncate(m.at + 1),
                }
                auc.missions[a] = Some(m);
            } else {
                if let Some(action) = m.action.take() {
                    m.legs.push_front(Leg {
                        goal: self.pos[a],
                        action,
                    });
                }
                if carried {
                    let leg = m.legs.pop_front().expect("carried mission fronts its drop");
                    let LegAction::Drop { arrival, station } = leg.action else {
                        unreachable!("carried mission fronts a drop leg");
                    };
                    let open = &mut auc.open[station as usize];
                    *open = open.saturating_sub(1);
                    let product = self.carry[a].expect("carried drop leg");
                    self.attached[a] = None;
                    self.counters.in_flight -= 1;
                    self.counters.queued += 1;
                    self.counters.tasks_shed += 1;
                    Self::requeue_pending(&mut auc.pending, PendingTask { product, arrival });
                }
                Self::shed_legs(&mut auc, &mut m, &mut self.counters);
                // Mission dissolved; a recovered (task-less) agent goes
                // back to the idle pool.
                auc.idle_dirty = true;
            }
            auc.dirty = true;
        }
        self.auction = Some(auc);
    }

    /// Drains `m.legs`, restoring each unexecuted pickup's reservation
    /// (and re-queueing its task) and releasing each drop's open slot.
    /// The carried task's drop, if any, must already be removed.
    fn shed_legs(auc: &mut AuctionState, m: &mut Mission, counters: &mut SimCounters) {
        while let Some(leg) = m.legs.pop_front() {
            match leg.action {
                LegAction::Pickup { product, arrival } => {
                    auc.reserved.add_units(leg.goal, product, 1);
                    counters.tasks_shed += 1;
                    Self::requeue_pending(&mut auc.pending, PendingTask { product, arrival });
                }
                LegAction::Drop { station, .. } => {
                    let open = &mut auc.open[station as usize];
                    *open = open.saturating_sub(1);
                }
            }
        }
    }

    /// Re-queues a shed task by arrival tick: the insertion point is the
    /// end of the run of arrivals ≤ the task's — deterministic under
    /// both engines even when rotations have the queue mid-cycle.
    fn requeue_pending(pending: &mut VecDeque<PendingTask>, task: PendingTask) {
        let i = pending.partition_point(|p| p.arrival <= task.arrival);
        pending.insert(i, task);
    }

    /// Collects catch-up candidates, plans them in parallel against the
    /// projected reservation table, and splices in the accepted detours.
    fn try_repairs(&mut self, t: u64) {
        let n = self.pos.len();
        let cfg = self.config.repair.clone();
        self.requests.clear();
        // Only awake agents can be candidates: a silent sleeper's lag is
        // constant below the threshold (the sleep guard keeps lagged
        // agents awake) and frozen sleepers are stalled, unaligned, or
        // past the rejoin horizon — all disqualified below anyway. The
        // reference sweep scans everyone and so double-checks this.
        for i in 0..self.active.len() {
            let a = self.active[i] as usize;
            if t < self.stall_until[a]
                || self.repair[a].is_some()
                || t < self.repair_cooldown_until[a]
                || !self.aligned(a)
            {
                continue;
            }
            let elapsed = (t - self.window_start) as usize;
            let lag = elapsed.saturating_sub(self.cursor[a]);
            if lag < cfg.lag_threshold {
                continue;
            }
            let rejoin = self.cursor[a] + lag + cfg.slack;
            if rejoin > self.window_len {
                continue;
            }
            // Eligibility: constant carry and zero hops over the skipped
            // segment, so rejoin preserves every pickup/drop-off and the
            // cycle-step bookkeeping.
            let base = self
                .window_plan
                .state(a, self.cursor[a])
                .expect("aligned cursor");
            let base_comp = self.component_of(base.at);
            let eligible = (self.cursor[a] + 1..=rejoin).all(|i| {
                let s = self.window_plan.state(a, i).expect("within horizon");
                s.carry == base.carry && self.component_of(s.at) == base_comp
            });
            if !eligible {
                continue;
            }
            let goal = self
                .window_plan
                .state(a, rejoin)
                .expect("within horizon")
                .at;
            if goal == self.pos[a] || cfg.slack == 0 {
                continue;
            }
            debug_assert!(
                self.sleep.is_awake(a),
                "virtually sleeping agent {a} qualified as a repair candidate at t={t}"
            );
            self.requests.push(RepairRequest {
                agent: a,
                start: self.pos[a],
                goal,
                deadline: cfg.slack,
                rejoin_cursor: rejoin,
                lag,
            });
        }
        if self.requests.is_empty() {
            return;
        }
        // The projection below reads every agent's cursor; materialize
        // the sleepers' analytic ones first (they stay asleep — their
        // trajectories are unchanged, the observer just needs them).
        self.settle_sleepers(t);
        // Deepest-lagged first when the batch is over budget (ties break
        // toward the lowest agent index), then back to agent order so the
        // acceptance pass stays order-deterministic.
        if self.requests.len() > cfg.max_batch.max(1) {
            self.requests
                .sort_unstable_by(|x, y| y.lag.cmp(&x.lag).then(x.agent.cmp(&y.agent)));
            self.requests.truncate(cfg.max_batch.max(1));
            self.requests.sort_unstable_by_key(|r| r.agent);
        }
        for r in &self.requests {
            self.repair_cooldown_until[r.agent] = t + cfg.cooldown;
            self.counters.repairs_attempted += 1;
            self.is_candidate[r.agent] = true;
        }

        // Shared reservation table: everyone except the candidates whose
        // reservations the searches could actually query, projected ahead
        // (stall first, then plan or active repair path, then parked
        // forever). The table persists across repair events; `reset`
        // clears it in O(touched). (Temporarily moved out of `self` so the
        // projection buffer can be borrowed alongside it.)
        //
        // Locality: a deadline-capped search expands states within
        // `slack + 1` steps of its start and queries times up to
        // `slack + 1`, while agent `b`'s projection at relative time `k`
        // lies within `k` steps of `pos[b]` (one cell per tick, Manhattan
        // distance bounds graph distance from below). So an agent beyond
        // Manhattan distance `2 * (slack + 1)` of every candidate start
        // can never collide with any query, and projected trajectories
        // never need more than `slack + 2` cells (the `slack + 2`nd cell
        // parks the agent at exactly the last queryable time, answering
        // every in-budget query identically to the full projection).
        // Both cuts are what keeps a repair event on a 100k-vertex floor
        // O(neighbourhood), not O(agents × lookahead).
        let graph = self.instance.warehouse.graph();
        let mut table = std::mem::replace(&mut self.repair_table, ReservationTable::new(0));
        table.reset();
        let radius = 2 * (cfg.slack as u64 + 1);
        let span = cfg.lookahead.min(cfg.slack + 2);
        for b in 0..n {
            if self.is_candidate[b] {
                continue;
            }
            let at = graph.coord(self.pos[b]);
            let near = self.requests.iter().any(|r| {
                let s = graph.coord(r.start);
                u64::from(at.x.abs_diff(s.x)) + u64::from(at.y.abs_diff(s.y)) <= radius
            });
            if !near {
                continue;
            }
            self.projection.clear();
            self.projection.push(self.pos[b]);
            let mut stall_left = self.stall_until[b].saturating_sub(t) as usize;
            while stall_left > 0 && self.projection.len() < span {
                self.projection.push(self.pos[b]);
                stall_left -= 1;
            }
            if let Some(r) = &self.repair[b] {
                for &v in r.path.iter().skip(r.at + 1) {
                    if self.projection.len() >= span {
                        break;
                    }
                    self.projection.push(v);
                }
            } else if self.aligned(b) {
                let mut k = self.cursor[b] + 1;
                while self.projection.len() < span && k <= self.window_len {
                    self.projection
                        .push(self.window_plan.state(b, k).expect("within horizon").at);
                    k += 1;
                }
            }
            // `reserve_path` parks the final projected cell from its
            // arrival time onward, so truncated projections stay
            // conservatively blocked past the horizon.
            table.reserve_path(&self.projection);
        }
        // Closed corridor cells are blanket obstacles for catch-up
        // searches: each one near a candidate is parked from time zero
        // (a single-cell `reserve_path`; reservations are idempotent
        // bitsets, so overlap with an occupant's projection is
        // harmless).
        for &v in &self.closed_cells {
            let at = graph.coord(v);
            let near = self.requests.iter().any(|r| {
                let s = graph.coord(r.start);
                u64::from(at.x.abs_diff(s.x)) + u64::from(at.y.abs_diff(s.y)) <= radius
            });
            if near {
                table.reserve_path(std::slice::from_ref(&v));
            }
        }

        let threads = wsp_core::resolve_threads(cfg.threads);
        let found = plan_repairs(graph, &table, &self.requests, threads);
        self.repair_table = table;
        for (agent, path) in accept_repairs(&self.requests, found) {
            self.repair[agent] = Some(path);
            self.counters.repairs_applied += 1;
        }
        // Clear the candidate flags through the request list instead of a
        // full O(agents) sweep per call.
        for i in 0..self.requests.len() {
            self.is_candidate[self.requests[i].agent] = false;
        }
    }
}
