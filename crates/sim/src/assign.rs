//! Lifelong task assignment: the policy layer deciding *which* agent
//! serves *which* queued task.
//!
//! [`AssignPolicy::Static`] keeps the seed behavior bit-for-bit: tasks sit
//! in per-product FIFO queues and attach to whichever agent's synthesized
//! cycle happens to execute a matching pickup — assignment is implicit in
//! the design, and on production-scale floors (where `direct_cycle_set`
//! pairs shelving rows with stations over ring distances of tens of
//! thousands of ticks) throughput starves.
//!
//! [`AssignPolicy::Auction`] adds an explicit dispatcher, after Shi et
//! al.'s adaptive task planning for large-scale robotized warehouses
//! (arXiv:2205.00831): each queued task is auctioned to the cheapest
//! eligible agent over BFS-distance costs
//! ([`FloorplanGraph::bfs_distances_bounded_into`] probes the idle
//! neighbourhood of the chosen shelf slot at escalating caps), compatible
//! same-product tasks are batched onto one agent, and idle agents are
//! rebalanced toward high-pressure stations. Every decision is a pure
//! function of `(queue, agent states, tick)` — index-deterministic
//! tie-breaks, no wall clock, no thread count — so the simulation's
//! byte-identical-report contract survives intact.
//!
//! # Deadlock-free routing: the parity direction field
//!
//! Mission routes ignore the synthesized traffic system (that is the
//! point: the static pairing is what starves), so they need their own
//! defense against head-on meetings in one-agent-wide aisles, which the
//! engine's grant pass — correctly — never resolves. Routes follow a
//! *direction field* over the grid: a horizontal edge may be traversed
//! east iff its row index is even (west iff odd), a vertical edge north
//! iff its column index is even (south iff odd). Adjacent corridors
//! alternate direction like one-way streets, so two field-following
//! agents can never meet head-on inside a corridor; cells the parity
//! rule would leave without an entry or an exit (map corners) are
//! *relaxed* to bidirectional, keeping the field usable on arbitrary
//! floorplans. Unroutable (site, station) pairs are skipped
//! deterministically — assignment degrades gracefully rather than
//! wedging.
//!
//! Residual contention (a parked agent occupying a corridor cell, convoy
//! pile-ups behind a stall) is handled by the engine's yield/reroute
//! pass: blocked mission agents nudge parked blockers into a
//! field-following drift walk toward the next junction, and reroute
//! around cells that stay contested.

use std::collections::VecDeque;

use wsp_model::{Coord, FloorplanGraph, LocationMatrix, ProductId, VertexId, Warehouse, NO_INDEX};

/// Which task-assignment policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignPolicy {
    /// The seed behavior, bit-for-bit: tasks attach to whichever agent's
    /// synthesized cycle executes a matching pickup. Golden files pin
    /// this rendering.
    #[default]
    Static,
    /// Deterministic auction dispatch: queued tasks are matched to idle
    /// (or re-targetable) agents over BFS-distance costs, batched per
    /// station, with idle-agent rebalancing toward high-pressure
    /// stations.
    Auction,
}

/// Configuration of the task-assignment layer.
#[derive(Debug, Clone)]
pub struct AssignConfig {
    /// The policy (Static by default — existing configs are unchanged).
    pub policy: AssignPolicy,
    /// Most tasks batched onto one agent per assignment (the first task
    /// plus up to `batch - 1` queued same-product followers).
    pub batch: usize,
    /// Idle agents staged near each station by the rebalancer (`0`
    /// disables rebalancing).
    pub rebalance_per_station: usize,
    /// Station-pressure weight: each already-assigned undelivered task at
    /// a station adds this many BFS steps to its bid, spreading load.
    pub station_bias: u32,
    /// Ticks a mission agent stays blocked before nudging a parked
    /// blocker into a drift walk.
    pub yield_after: u32,
    /// Ticks blocked before a task mission reroutes around the contested
    /// cell (repositioning missions give up and park instead).
    pub reroute_after: u32,
}

impl Default for AssignConfig {
    fn default() -> Self {
        AssignConfig {
            policy: AssignPolicy::Static,
            batch: 4,
            rebalance_per_station: 2,
            station_bias: 8,
            yield_after: 2,
            reroute_after: 8,
        }
    }
}

/// One agent's bid for a task: its index and its BFS-distance cost from
/// the task's pickup slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentBid {
    /// Agent index.
    pub agent: u32,
    /// BFS distance from the pickup site to the agent (engine bids use
    /// [`FloorplanGraph::bfs_distances_bounded_into`] fields).
    pub cost: u32,
}

/// The auction's winner rule, factored out as a pure function: the
/// minimum bid by `(cost, agent)`. Any permutation of `bids` yields the
/// same winner — the property test in `tests/assign_properties.rs`
/// shuffles the slate and pins exactly this invariant, which is what
/// makes the matching independent of internal iteration order.
pub fn select_agent(bids: &[AgentBid]) -> Option<AgentBid> {
    bids.iter().copied().min_by_key(|b| (b.cost, b.agent))
}

/// A task waiting for assignment (product plus arrival tick, FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingTask {
    pub product: ProductId,
    pub arrival: u64,
}

/// A carry transition a mission executes on its next tick transition,
/// with the pre-move cell as the action vertex (the plan checker's
/// condition (3) convention, shared with window-plan execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LegAction {
    /// Pick one unit of `product` up; the task arrived at `arrival`.
    Pickup { product: ProductId, arrival: u64 },
    /// Drop the carried unit at a station, completing the task that
    /// arrived at `arrival`; `station` indexes the auction's station
    /// table for pressure bookkeeping.
    Drop { arrival: u64, station: u16 },
}

/// One mission leg: travel to `goal`, then execute `action` on the next
/// transition out of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Leg {
    pub goal: VertexId,
    pub action: LegAction,
}

/// What a mission is for — task service, station staging, or a nudge out
/// of somebody's way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MissionKind {
    /// Serving one or more assigned tasks (pickup/drop leg pairs).
    Task,
    /// Rebalancing toward the station with this index's anchor.
    Reposition(u16),
    /// A field-following drift walk clearing a contested cell (also the
    /// automatic walk-off after a mission's final drop).
    Drift,
}

/// An agent's current auction mission: the route to the front leg's goal
/// plus the remaining legs. `path[at]` is the agent's expected position;
/// legs are popped on arrival, and the popped leg's action fires on the
/// following transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Mission {
    pub kind: MissionKind,
    pub path: Vec<VertexId>,
    pub at: usize,
    pub legs: VecDeque<Leg>,
    /// Carry transition pending on the next tick transition.
    pub action: Option<LegAction>,
    /// Consecutive ticks this mission wanted a move and was not granted.
    pub blocked: u32,
}

impl Mission {
    /// Whether assignment may replace this mission with a task mission
    /// (staging and drifting are best-effort; a pending carry action is
    /// not).
    pub(crate) fn replaceable(&self) -> bool {
        !matches!(self.kind, MissionKind::Task) && self.action.is_none()
    }

    /// The next cell this mission wants, or `at` when the route is done.
    pub(crate) fn desired(&self, at: VertexId) -> VertexId {
        if self.at + 1 < self.path.len() {
            self.path[self.at + 1]
        } else {
            at
        }
    }
}

/// Whether the parity direction field permits traversing the edge
/// `a -> b` (adjacent grid cells): horizontal edges run east on even
/// rows and west on odd rows; vertical edges run north on even columns
/// and south on odd columns.
#[inline]
fn parity_allows(a: Coord, b: Coord) -> bool {
    if a.y == b.y {
        if b.x > a.x {
            a.y & 1 == 0
        } else {
            a.y & 1 == 1
        }
    } else if b.y > a.y {
        a.x & 1 == 0
    } else {
        a.x & 1 == 1
    }
}

/// All mutable and precomputed state behind [`AssignPolicy::Auction`],
/// boxed into the engine only when the policy is on — `Static` runs pay
/// nothing.
#[derive(Debug)]
pub(crate) struct AuctionState {
    /// Tasks awaiting assignment, in arrival order (arrivals are
    /// redirected here instead of the per-product execution queues).
    pub pending: VecDeque<PendingTask>,
    /// Assignment-time stock reservations: debited when a task is
    /// assigned a slot, so concurrent missions never over-commit a slot
    /// and executed pickups never underflow the authoritative ledger.
    pub reserved: LocationMatrix,
    /// Station vertices, in warehouse order.
    pub stations: Vec<VertexId>,
    /// Per station: assigned-but-undelivered tasks (the pressure term).
    pub open: Vec<u32>,
    /// Per station: idle agents staged at (or repositioning toward) its
    /// anchor.
    pub staged: Vec<u32>,
    /// Which station each agent is staged under, if any.
    pub staged_of: Vec<Option<u16>>,
    /// Per-agent current mission.
    pub missions: Vec<Option<Mission>>,
    /// Per station: the staging cell repositioned agents park at (a
    /// junction cell a few steps off the station, so staged agents leave
    /// the station approach clear).
    pub anchors: Vec<VertexId>,
    /// Set when an agent went idle (mission completed) — the rebalancer
    /// runs on the next assignment pass and idle agents stay awake until
    /// it has; both are what keep tick elision unobservable.
    pub idle_dirty: bool,

    /// Stocked slots per product, ascending vertex order.
    sites: Vec<Vec<VertexId>>,
    /// Per station: field-directed distance from every vertex *to* the
    /// station (reverse BFS over the direction field).
    to_station: Vec<Vec<u32>>,
    /// Per station: field-directed distance from the station to every
    /// vertex (forward BFS; sizes follow-up batch legs).
    from_station: Vec<Vec<u32>>,
    /// Cells where the parity rule is relaxed to bidirectional (no entry
    /// or no exit otherwise — map corners and degenerate dead ends).
    relaxed: Vec<bool>,

    // Route scratch (epoch-stamped dense arrays, O(visited) per search).
    seen: Vec<u32>,
    parent: Vec<u32>,
    epoch: u32,
    frontier: VecDeque<u32>,
    // Scratch for the bounded idle-neighbourhood probes.
    pub probe_dist: Vec<u32>,
    pub probe_touched: Vec<u32>,
}

impl AuctionState {
    /// Builds the auction tables for a warehouse and team size: direction
    /// field relaxation, per-station distance fields, per-product site
    /// lists, and staging anchors.
    pub(crate) fn new(warehouse: &Warehouse, agents: usize) -> Self {
        let graph = warehouse.graph();
        let n = graph.vertex_count();

        // Relax cells the parity rule would leave unenterable or
        // unleavable (corners): all their edges become bidirectional,
        // which cannot de-relax any other cell (edges only get added).
        let mut relaxed = vec![false; n];
        for v in graph.vertices() {
            let a = graph.coord(v);
            let mut out = 0usize;
            let mut inc = 0usize;
            for &w in graph.neighbors(v) {
                let b = graph.coord(w);
                if parity_allows(a, b) {
                    out += 1;
                }
                if parity_allows(b, a) {
                    inc += 1;
                }
            }
            relaxed[v.index()] = out == 0 || inc == 0;
        }

        let stations: Vec<VertexId> = warehouse.stations().to_vec();
        let to_station: Vec<Vec<u32>> = stations
            .iter()
            .map(|&s| directed_distances(graph, &relaxed, s, true))
            .collect();
        let from_station: Vec<Vec<u32>> = stations
            .iter()
            .map(|&s| directed_distances(graph, &relaxed, s, false))
            .collect();

        let mut sites: Vec<Vec<VertexId>> = vec![Vec::new(); warehouse.catalog().len()];
        for (v, p, units) in warehouse.location_matrix().iter() {
            if units > 0 {
                sites[p.index()].push(v);
            }
        }
        for list in &mut sites {
            list.sort_unstable_by_key(|v| v.index());
            list.dedup();
        }

        // Anchor per station: the lowest-indexed junction cell (3+ free
        // neighbors) a few field-steps out and able to route back, so
        // staged agents wait beside the flow instead of inside it.
        let anchors: Vec<VertexId> = (0..stations.len())
            .map(|q| {
                let pick = |lo: u32, hi: u32, need_junction: bool| {
                    graph.vertices().find(|&v| {
                        let d = from_station[q][v.index()];
                        (lo..=hi).contains(&d)
                            && to_station[q][v.index()] != u32::MAX
                            && !warehouse.is_station(v)
                            && (!need_junction || graph.neighbors(v).len() >= 3)
                    })
                };
                pick(2, 8, true)
                    .or_else(|| pick(1, 16, false))
                    .unwrap_or(stations[q])
            })
            .collect();

        AuctionState {
            pending: VecDeque::new(),
            reserved: warehouse.location_matrix().clone(),
            open: vec![0; stations.len()],
            staged: vec![0; stations.len()],
            staged_of: vec![None; agents],
            missions: (0..agents).map(|_| None).collect(),
            // Dirty at construction: the first executed tick runs one
            // rebalance pass over the initial placement.
            idle_dirty: true,
            anchors,
            stations,
            sites,
            to_station,
            from_station,
            relaxed,
            seen: vec![0; n],
            parent: vec![NO_INDEX; n],
            epoch: 0,
            frontier: VecDeque::new(),
            probe_dist: Vec::new(),
            probe_touched: Vec::new(),
        }
    }

    /// Whether a mission may traverse `u -> v` (parity rule, or either
    /// endpoint relaxed).
    #[inline]
    pub(crate) fn edge_allowed(&self, graph: &FloorplanGraph, u: VertexId, v: VertexId) -> bool {
        parity_allows(graph.coord(u), graph.coord(v))
            || self.relaxed[u.index()]
            || self.relaxed[v.index()]
    }

    /// The cheapest `(station, site)` pair for a task of `product`:
    /// minimizes field-directed site-to-station distance plus
    /// `bias × open[station]`, over sites with unreserved stock.
    /// Tie-breaks by station index then site index — pure and
    /// order-independent.
    pub(crate) fn pick_station_site(
        &self,
        product: ProductId,
        bias: u32,
    ) -> Option<(u16, VertexId)> {
        let mut best: Option<(u64, u16, VertexId)> = None;
        for q in 0..self.stations.len() {
            let table = &self.to_station[q];
            let mut site: Option<(u32, VertexId)> = None;
            for &s in &self.sites[product.index()] {
                if self.reserved.units_at(s, product) == 0 {
                    continue;
                }
                let d = table[s.index()];
                if d == u32::MAX {
                    continue;
                }
                if site.is_none_or(|(bd, bs)| (d, s.index()) < (bd, bs.index())) {
                    site = Some((d, s));
                }
            }
            let Some((d, s)) = site else { continue };
            let cost = u64::from(d) + u64::from(bias) * u64::from(self.open[q]);
            if best.is_none_or(|(bc, bq, _)| (cost, q as u16) < (bc, bq)) {
                best = Some((cost, q as u16, s));
            }
        }
        best.map(|(_, q, s)| (q, s))
    }

    /// A follow-up `(station, site)` pair for batching: like
    /// [`pick_station_site`](Self::pick_station_site) but the agent
    /// starts from station `from`'s vertex, so the site leg is priced
    /// with the forward field distance out of that station.
    pub(crate) fn pick_followup(
        &self,
        product: ProductId,
        from: u16,
        bias: u32,
    ) -> Option<(u16, VertexId)> {
        let out = &self.from_station[from as usize];
        let mut best: Option<(u64, u16, VertexId)> = None;
        for q in 0..self.stations.len() {
            let table = &self.to_station[q];
            for &s in &self.sites[product.index()] {
                if self.reserved.units_at(s, product) == 0 {
                    continue;
                }
                let (d_out, d_in) = (out[s.index()], table[s.index()]);
                if d_out == u32::MAX || d_in == u32::MAX {
                    continue;
                }
                let cost =
                    u64::from(d_out) + u64::from(d_in) + u64::from(bias) * u64::from(self.open[q]);
                if best
                    .is_none_or(|(bc, bq, bs)| (cost, q as u16, s.index()) < (bc, bq, bs.index()))
                {
                    best = Some((cost, q as u16, s));
                }
            }
        }
        best.map(|(_, q, s)| (q, s))
    }

    /// Field-directed BFS route from `from` to `to`, optionally banning
    /// one cell (reroutes ban the contested cell). Returns the vertex
    /// path including both endpoints, or `None` when the field admits no
    /// route. Deterministic: CSR neighbor order, dense parent table.
    pub(crate) fn route(
        &mut self,
        graph: &FloorplanGraph,
        from: VertexId,
        to: VertexId,
        ban: Option<VertexId>,
    ) -> Option<Vec<VertexId>> {
        if from == to {
            return Some(vec![from]);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.frontier.clear();
        self.seen[from.index()] = epoch;
        self.frontier.push_back(from.0);
        while let Some(u) = self.frontier.pop_front() {
            let u = VertexId(u);
            for &v in graph.neighbors(u) {
                if self.seen[v.index()] == epoch
                    || Some(v) == ban
                    || !self.edge_allowed(graph, u, v)
                {
                    continue;
                }
                self.seen[v.index()] = epoch;
                self.parent[v.index()] = u.0;
                if v == to {
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != from {
                        cur = VertexId(self.parent[cur.index()]);
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                self.frontier.push_back(v.0);
            }
        }
        None
    }

    /// A drift walk out of `from`: one field-allowed step (preferring an
    /// empty cell, then the lowest vertex index), then straight along the
    /// field while the corridor stays one cell wide, stopping at the
    /// first junction (3+ free neighbors — room for traffic to pass).
    /// Used to clear nudged blockers and to walk agents off stations
    /// after their final drop. Always returns a path starting at `from`
    /// (length 1 when the cell has no exit).
    pub(crate) fn drift_walk(
        &self,
        graph: &FloorplanGraph,
        from: VertexId,
        occupant: &[u32],
    ) -> Vec<VertexId> {
        let mut path = vec![from];
        let mut first: Option<(bool, u32)> = None;
        for &v in graph.neighbors(from) {
            if !self.edge_allowed(graph, from, v) {
                continue;
            }
            let occupied = occupant[v.index()] != NO_INDEX;
            if first.is_none_or(|(bo, bv)| (occupied, v.0) < (bo, bv)) {
                first = Some((occupied, v.0));
            }
        }
        let Some((_, v)) = first else { return path };
        let mut prev = from;
        let mut cur = VertexId(v);
        path.push(cur);
        while path.len() < 2_048 && graph.neighbors(cur).len() < 3 {
            let next = graph
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| w != prev && self.edge_allowed(graph, cur, w));
            let Some(w) = next else { break };
            if w == from {
                break;
            }
            path.push(w);
            prev = cur;
            cur = w;
        }
        path
    }
}

/// Field-directed BFS distances over the whole graph: from `source`
/// outward (`reverse == false`, "how far from the station") or from
/// everywhere into `source` (`reverse == true`, "how far to the
/// station").
fn directed_distances(
    graph: &FloorplanGraph,
    relaxed: &[bool],
    source: VertexId,
    reverse: bool,
) -> Vec<u32> {
    let allowed = |u: VertexId, v: VertexId| {
        parity_allows(graph.coord(u), graph.coord(v)) || relaxed[u.index()] || relaxed[v.index()]
    };
    let mut dist = vec![u32::MAX; graph.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        for &w in graph.neighbors(u) {
            let ok = if reverse {
                allowed(w, u)
            } else {
                allowed(u, w)
            };
            if ok && dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_agent_is_a_pure_min_by_cost_then_index() {
        let bids = [
            AgentBid { agent: 7, cost: 3 },
            AgentBid { agent: 2, cost: 3 },
            AgentBid { agent: 5, cost: 1 },
        ];
        assert_eq!(select_agent(&bids), Some(AgentBid { agent: 5, cost: 1 }));
        let mut rev = bids;
        rev.reverse();
        assert_eq!(select_agent(&rev), select_agent(&bids));
        assert_eq!(select_agent(&[]), None);
        // Equal costs break toward the lower agent index.
        assert_eq!(
            select_agent(&bids[..2]),
            Some(AgentBid { agent: 2, cost: 3 })
        );
    }

    #[test]
    fn parity_field_is_antisymmetric_on_unrelaxed_edges() {
        // One cell per quadrant of parity: exactly one direction each.
        for (a, b) in [
            (Coord::new(4, 2), Coord::new(5, 2)), // even row: east only
            (Coord::new(4, 3), Coord::new(5, 3)), // odd row: west only
            (Coord::new(4, 2), Coord::new(4, 3)), // even col: north only
            (Coord::new(5, 2), Coord::new(5, 3)), // odd col: south only
        ] {
            assert_ne!(parity_allows(a, b), parity_allows(b, a));
        }
    }
}
