//! Lifelong task assignment: the policy layer deciding *which* agent
//! serves *which* queued task.
//!
//! [`AssignPolicy::Static`] keeps the seed behavior bit-for-bit: tasks sit
//! in per-product FIFO queues and attach to whichever agent's synthesized
//! cycle happens to execute a matching pickup — assignment is implicit in
//! the design, and on production-scale floors (where `direct_cycle_set`
//! pairs shelving rows with stations over ring distances of tens of
//! thousands of ticks) throughput starves.
//!
//! [`AssignPolicy::Auction`] adds an explicit dispatcher, after Shi et
//! al.'s adaptive task planning for large-scale robotized warehouses
//! (arXiv:2205.00831): each queued task is auctioned to the cheapest
//! eligible agent over BFS-distance costs
//! ([`FloorplanGraph::bfs_distances_bounded_into`] probes the idle
//! neighbourhood of the chosen shelf slot at escalating caps), compatible
//! same-product tasks are batched onto one agent, and idle agents are
//! rebalanced toward high-pressure stations. Every decision is a pure
//! function of `(queue, agent states, tick)` — index-deterministic
//! tie-breaks, no wall clock, no thread count — so the simulation's
//! byte-identical-report contract survives intact.
//!
//! # Deadlock-free routing: the parity direction field
//!
//! Mission routes ignore the synthesized traffic system (that is the
//! point: the static pairing is what starves), so they need their own
//! defense against head-on meetings in one-agent-wide aisles, which the
//! engine's grant pass — correctly — never resolves. Routes follow a
//! *direction field* over the grid: a horizontal edge may be traversed
//! east iff its row index is even (west iff odd), a vertical edge north
//! iff its column index is even (south iff odd). Adjacent corridors
//! alternate direction like one-way streets, so two field-following
//! agents can never meet head-on inside a corridor; cells the parity
//! rule would leave without an entry or an exit (map corners) are
//! *relaxed* to bidirectional, keeping the field usable on arbitrary
//! floorplans. Unroutable (site, station) pairs are skipped
//! deterministically — assignment degrades gracefully rather than
//! wedging.
//!
//! Residual contention (a parked agent occupying a corridor cell, convoy
//! pile-ups behind a stall) is handled by the engine's yield/reroute
//! pass: blocked mission agents nudge parked blockers into a
//! field-following drift walk toward the next junction, and reroute
//! around cells that stay contested.

use std::collections::VecDeque;

use wsp_model::{Coord, FloorplanGraph, LocationMatrix, ProductId, VertexId, Warehouse, NO_INDEX};

use crate::distfield::DistFields;

/// Which task-assignment policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignPolicy {
    /// The seed behavior, bit-for-bit: tasks attach to whichever agent's
    /// synthesized cycle executes a matching pickup. Golden files pin
    /// this rendering.
    #[default]
    Static,
    /// Deterministic auction dispatch: queued tasks are matched to idle
    /// (or re-targetable) agents over BFS-distance costs, batched per
    /// station, with idle-agent rebalancing toward high-pressure
    /// stations.
    Auction,
}

/// Configuration of the task-assignment layer.
#[derive(Debug, Clone)]
pub struct AssignConfig {
    /// The policy (Static by default — existing configs are unchanged).
    pub policy: AssignPolicy,
    /// Most tasks batched onto one agent per assignment (the first task
    /// plus up to `batch - 1` queued same-product followers).
    pub batch: usize,
    /// Idle agents staged near each station by the rebalancer (`0`
    /// disables rebalancing).
    pub rebalance_per_station: usize,
    /// Station-pressure weight: each already-assigned undelivered task at
    /// a station adds this many BFS steps to its bid, spreading load.
    pub station_bias: u32,
    /// Ticks a mission agent stays blocked before nudging a parked
    /// blocker into a drift walk.
    pub yield_after: u32,
    /// Ticks blocked before a task mission reroutes around the contested
    /// cell (repositioning missions give up and park instead).
    pub reroute_after: u32,
    /// Longest route (in cells, endpoints included) the auction will
    /// install. The parity field occasionally prices a `(agent, site)`
    /// pair at thousands of cells — a detour the whole width of the
    /// floor around one parked blocker — and committing one seeds a
    /// self-sustaining convoy/nudge cascade. Over the cap, assignment
    /// falls back to the next-best bid, a follow-up leg sheds back to
    /// the queue, and a blocked-mission reroute parks wedged until its
    /// blocker yields. Keep this comfortably above any route a healthy
    /// floor produces (the 10k golden's maximum is 979).
    pub route_cap: u32,
}

impl Default for AssignConfig {
    fn default() -> Self {
        AssignConfig {
            policy: AssignPolicy::Static,
            batch: 4,
            rebalance_per_station: 2,
            station_bias: 8,
            yield_after: 2,
            reroute_after: 8,
            route_cap: 1024,
        }
    }
}

/// One agent's bid for a task: its index and its BFS-distance cost from
/// the task's pickup slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentBid {
    /// Agent index.
    pub agent: u32,
    /// BFS distance from the pickup site to the agent (engine bids use
    /// [`FloorplanGraph::bfs_distances_bounded_into`] fields).
    pub cost: u32,
}

/// The auction's winner rule, factored out as a pure function: the
/// minimum bid by `(cost, agent)`. Any permutation of `bids` yields the
/// same winner — the property test in `tests/assign_properties.rs`
/// shuffles the slate and pins exactly this invariant, which is what
/// makes the matching independent of internal iteration order.
pub fn select_agent(bids: &[AgentBid]) -> Option<AgentBid> {
    bids.iter().copied().min_by_key(|b| (b.cost, b.agent))
}

/// A task waiting for assignment (product plus arrival tick, FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingTask {
    pub product: ProductId,
    pub arrival: u64,
}

/// A carry transition a mission executes on its next tick transition,
/// with the pre-move cell as the action vertex (the plan checker's
/// condition (3) convention, shared with window-plan execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LegAction {
    /// Pick one unit of `product` up; the task arrived at `arrival`.
    Pickup { product: ProductId, arrival: u64 },
    /// Drop the carried unit at a station, completing the task that
    /// arrived at `arrival`; `station` indexes the auction's station
    /// table for pressure bookkeeping.
    Drop { arrival: u64, station: u16 },
}

/// One mission leg: travel to `goal`, then execute `action` on the next
/// transition out of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Leg {
    pub goal: VertexId,
    pub action: LegAction,
}

/// What a mission is for — task service, station staging, or a nudge out
/// of somebody's way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MissionKind {
    /// Serving one or more assigned tasks (pickup/drop leg pairs).
    Task,
    /// Rebalancing toward the station with this index's anchor.
    Reposition(u16),
    /// A field-following drift walk clearing a contested cell (also the
    /// automatic walk-off after a mission's final drop).
    Drift,
}

/// An agent's current auction mission: the route to the front leg's goal
/// plus the remaining legs. `path[at]` is the agent's expected position;
/// legs are popped on arrival, and the popped leg's action fires on the
/// following transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Mission {
    pub kind: MissionKind,
    pub path: Vec<VertexId>,
    pub at: usize,
    pub legs: VecDeque<Leg>,
    /// Carry transition pending on the next tick transition.
    pub action: Option<LegAction>,
    /// Consecutive ticks this mission wanted a move and was not granted.
    pub blocked: u32,
    /// Set when a blocked-triggered reroute failed or came back with a
    /// pathological detour: the agent parks (and may sleep) until its
    /// blocker moves or the boundary replan wakes it for a retry.
    pub wedged: bool,
}

impl Mission {
    /// Whether assignment may replace this mission with a task mission
    /// (staging and drifting are best-effort; a pending carry action is
    /// not).
    pub(crate) fn replaceable(&self) -> bool {
        !matches!(self.kind, MissionKind::Task) && self.action.is_none()
    }

    /// The next cell this mission wants, or `at` when the route is done.
    pub(crate) fn desired(&self, at: VertexId) -> VertexId {
        if self.at + 1 < self.path.len() {
            self.path[self.at + 1]
        } else {
            at
        }
    }
}

/// A read-only view of the engine's corridor closures for route
/// searches: per-vertex first-open tick plus the current tick. A
/// default (empty) view closes nothing, so fault-free callers and tests
/// pay only a bounds-checked load per expansion.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClosedSet<'c> {
    /// `until[v]` is the first tick vertex `v` is open again.
    pub until: &'c [u64],
    /// The current tick.
    pub t: u64,
}

impl ClosedSet<'_> {
    /// Whether `v` is closed right now (never true for the empty view).
    #[inline]
    pub(crate) fn blocks(&self, v: VertexId) -> bool {
        self.until.get(v.index()).is_some_and(|&u| self.t < u)
    }
}

/// Whether the parity direction field permits traversing the edge
/// `a -> b` (adjacent grid cells): horizontal edges run east on even
/// rows and west on odd rows; vertical edges run north on even columns
/// and south on odd columns.
#[inline]
fn parity_allows(a: Coord, b: Coord) -> bool {
    if a.y == b.y {
        if b.x > a.x {
            a.y & 1 == 0
        } else {
            a.y & 1 == 1
        }
    } else if b.y > a.y {
        a.x & 1 == 0
    } else {
        a.x & 1 == 1
    }
}

/// All mutable and precomputed state behind [`AssignPolicy::Auction`],
/// boxed into the engine only when the policy is on — `Static` runs pay
/// nothing.
#[derive(Debug)]
pub(crate) struct AuctionState {
    /// Tasks awaiting assignment, in arrival order (arrivals are
    /// redirected here instead of the per-product execution queues).
    pub pending: VecDeque<PendingTask>,
    /// Assignment-time stock reservations: debited when a task is
    /// assigned a slot, so concurrent missions never over-commit a slot
    /// and executed pickups never underflow the authoritative ledger.
    pub reserved: LocationMatrix,
    /// Station vertices, in warehouse order.
    pub stations: Vec<VertexId>,
    /// Per station: assigned-but-undelivered tasks (the pressure term).
    pub open: Vec<u32>,
    /// Per station: idle agents staged at (or repositioning toward) its
    /// anchor.
    pub staged: Vec<u32>,
    /// Per station: dark under an injected outage. Dark stations take no
    /// new assignments (the pickers skip them, so pressure redistributes
    /// through the usual `station_bias` term); queued tasks wait for the
    /// outage to expire rather than vanish.
    pub dark: Vec<bool>,
    /// Which station each agent is staged under, if any.
    pub staged_of: Vec<Option<u16>>,
    /// Per-agent current mission.
    pub missions: Vec<Option<Mission>>,
    /// Per station: the staging cell repositioned agents park at (a
    /// junction cell a few steps off the station, so staged agents leave
    /// the station approach clear).
    pub anchors: Vec<VertexId>,
    /// Set when an agent went idle (mission completed) — the rebalancer
    /// runs on the next assignment pass and idle agents stay awake until
    /// it has; both are what keep tick elision unobservable.
    pub idle_dirty: bool,
    /// Set when any assignment input changed since the last pass ran:
    /// queue arrivals, shed legs, drops (station pressure), mission
    /// retirements, nudges, stalls, wakes, replans. Cleared when a pass
    /// runs; while it stays clear and the last pass was
    /// [`pass_clean`](Self::pass_clean), the phase is provably a no-op
    /// and the engine skips it outright.
    pub dirty: bool,
    /// Whether the last assignment pass was *clean*: committed nothing
    /// and left the pending queue in its original order (a full dry
    /// rotation, or an immediate no-eligible-agents bail). A clean pass
    /// re-run on unchanged inputs is guaranteed to be a byte-identical
    /// no-op — the dirty-set skip's soundness condition.
    pub pass_clean: bool,
    /// Test hook: `false` forces the assignment pass to run every
    /// executed tick (the always-run oracle the dirty-set property test
    /// compares against).
    pub dirty_skip: bool,
    /// Precomputed distance structures (anchor fields, sorted stocked-
    /// site lists); see [`crate::distfield`].
    pub fields: DistFields,

    /// Per station: field-directed distance from every vertex *to* the
    /// station (reverse BFS over the direction field). The forward
    /// (station-to-vertex) fields live on only through the sorted site
    /// lists in [`fields`](Self::fields).
    to_station: Vec<Vec<u32>>,
    /// Cells where the parity rule is relaxed to bidirectional (no entry
    /// or no exit otherwise — map corners and degenerate dead ends).
    relaxed: Vec<bool>,

    // Route scratch (epoch-stamped dense arrays, O(visited) per search).
    seen: Vec<u32>,
    parent: Vec<u32>,
    epoch: u32,
    frontier: VecDeque<u32>,
    // Scratch for the bounded idle-neighbourhood probes.
    pub probe_dist: Vec<u32>,
    pub probe_touched: Vec<u32>,
}

impl AuctionState {
    /// Builds the auction tables for a warehouse and team size: direction
    /// field relaxation, per-station distance fields, per-product site
    /// lists, staging anchors, and the distance-field cache.
    pub(crate) fn new(warehouse: &Warehouse, agents: usize) -> Self {
        let graph = warehouse.graph();
        let n = graph.vertex_count();

        // Relax cells the parity rule would leave unenterable or
        // unleavable (corners): all their edges become bidirectional,
        // which cannot de-relax any other cell (edges only get added).
        let mut relaxed = vec![false; n];
        for v in graph.vertices() {
            let a = graph.coord(v);
            let mut out = 0usize;
            let mut inc = 0usize;
            for &w in graph.neighbors(v) {
                let b = graph.coord(w);
                if parity_allows(a, b) {
                    out += 1;
                }
                if parity_allows(b, a) {
                    inc += 1;
                }
            }
            relaxed[v.index()] = out == 0 || inc == 0;
        }

        let stations: Vec<VertexId> = warehouse.stations().to_vec();
        let to_station: Vec<Vec<u32>> = stations
            .iter()
            .map(|&s| directed_distances(graph, &relaxed, s, true))
            .collect();
        let from_station: Vec<Vec<u32>> = stations
            .iter()
            .map(|&s| directed_distances(graph, &relaxed, s, false))
            .collect();

        let mut sites: Vec<Vec<VertexId>> = vec![Vec::new(); warehouse.catalog().len()];
        for (v, p, units) in warehouse.location_matrix().iter() {
            if units > 0 {
                sites[p.index()].push(v);
            }
        }
        for list in &mut sites {
            list.sort_unstable_by_key(|v| v.index());
            list.dedup();
        }

        // Anchor per station: the lowest-indexed junction cell (3+ free
        // neighbors) a few field-steps out and able to route back, so
        // staged agents wait beside the flow instead of inside it.
        let anchors: Vec<VertexId> = (0..stations.len())
            .map(|q| {
                let pick = |lo: u32, hi: u32, need_junction: bool| {
                    graph.vertices().find(|&v| {
                        let d = from_station[q][v.index()];
                        (lo..=hi).contains(&d)
                            && to_station[q][v.index()] != u32::MAX
                            && !warehouse.is_station(v)
                            && (!need_junction || graph.neighbors(v).len() >= 3)
                    })
                };
                pick(2, 8, true)
                    .or_else(|| pick(1, 16, false))
                    .unwrap_or(stations[q])
            })
            .collect();

        let fields = DistFields::new(graph, &anchors, &to_station, &from_station, &sites);

        AuctionState {
            pending: VecDeque::new(),
            reserved: warehouse.location_matrix().clone(),
            open: vec![0; stations.len()],
            staged: vec![0; stations.len()],
            dark: vec![false; stations.len()],
            staged_of: vec![None; agents],
            missions: (0..agents).map(|_| None).collect(),
            // Dirty at construction: the first executed tick runs one
            // rebalance pass over the initial placement.
            idle_dirty: true,
            dirty: true,
            pass_clean: false,
            dirty_skip: true,
            fields,
            anchors,
            stations,
            to_station,
            relaxed,
            seen: vec![0; n],
            parent: vec![NO_INDEX; n],
            epoch: 0,
            frontier: VecDeque::new(),
            probe_dist: Vec::new(),
            probe_touched: Vec::new(),
        }
    }

    /// Whether a mission may traverse `u -> v` (parity rule, or either
    /// endpoint relaxed).
    #[inline]
    pub(crate) fn edge_allowed(&self, graph: &FloorplanGraph, u: VertexId, v: VertexId) -> bool {
        parity_allows(graph.coord(u), graph.coord(v))
            || self.relaxed[u.index()]
            || self.relaxed[v.index()]
    }

    /// The cheapest `(station, site)` pair for a task of `product`:
    /// minimizes field-directed site-to-station distance plus
    /// `bias × open[station]`, over sites with unreserved stock.
    /// Tie-breaks by station index then site index — pure and
    /// order-independent. Per station this reads the first stocked
    /// entry of the cached ascending site list (amortized O(1); the
    /// pre-cache full scan is the oracle it is property-tested against).
    /// Dark stations are skipped outright: an outage removes them from
    /// the slate until it expires.
    pub(crate) fn pick_station_site(
        &mut self,
        product: ProductId,
        bias: u32,
    ) -> Option<(u16, VertexId)> {
        let mut best: Option<(u64, u16, VertexId)> = None;
        for q in 0..self.stations.len() {
            if self.dark[q] {
                continue;
            }
            let Some((d, s)) = self.fields.first_stocked_in(q, product, &self.reserved) else {
                continue;
            };
            let cost = u64::from(d) + u64::from(bias) * u64::from(self.open[q]);
            if best.is_none_or(|(bc, bq, _)| (cost, q as u16) < (bc, bq)) {
                best = Some((cost, q as u16, s));
            }
        }
        best.map(|(_, q, s)| (q, s))
    }

    /// A follow-up `(station, site)` pair for batching: like
    /// [`pick_station_site`](Self::pick_station_site) but the agent
    /// starts from station `from`'s vertex, so the site leg is priced
    /// with the forward field distance out of that station.
    /// Walks the cached site list of the *from* station in ascending
    /// out-distance, so the scan stops as soon as the remaining
    /// out-distance alone exceeds the best total cost — the same pure
    /// `(cost, station, site)` minimum as a full scan (ties at the
    /// cutoff are still scanned: `d_out == best` can still win its
    /// tie-break with a zero in-distance-plus-pressure term).
    pub(crate) fn pick_followup(
        &mut self,
        product: ProductId,
        from: u16,
        bias: u32,
    ) -> Option<(u16, VertexId)> {
        let stations = self.stations.len();
        let tail = self
            .fields
            .stocked_out_tail(from as usize, product, &self.reserved);
        let mut best: Option<(u64, u16, VertexId)> = None;
        for e in tail {
            if let Some((bc, _, _)) = best {
                if u64::from(e.d) > bc {
                    break;
                }
            }
            if self.reserved.units_at(e.site, product) == 0 {
                continue;
            }
            for q in 0..stations {
                if self.dark[q] {
                    continue;
                }
                let d_in = self.to_station[q][e.site.index()];
                if d_in == u32::MAX {
                    continue;
                }
                let cost =
                    u64::from(e.d) + u64::from(d_in) + u64::from(bias) * u64::from(self.open[q]);
                if best.is_none_or(|(bc, bq, bs)| {
                    (cost, q as u16, e.site.index()) < (bc, bq, bs.index())
                }) {
                    best = Some((cost, q as u16, e.site));
                }
            }
        }
        best.map(|(_, q, s)| (q, s))
    }

    /// Field-directed BFS route from `from` to `to`, optionally banning
    /// one cell (reroutes ban the contested cell) and never expanding
    /// into a currently closed vertex (`from` itself may be closed — an
    /// agent caught inside a closing corridor routes *out* of it).
    /// Returns the vertex path including both endpoints, or `None` when
    /// the field admits no route. Deterministic: CSR neighbor order,
    /// dense parent table.
    pub(crate) fn route(
        &mut self,
        graph: &FloorplanGraph,
        from: VertexId,
        to: VertexId,
        ban: Option<VertexId>,
        closed: ClosedSet<'_>,
    ) -> Option<Vec<VertexId>> {
        if from == to {
            return Some(vec![from]);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.frontier.clear();
        self.seen[from.index()] = epoch;
        self.frontier.push_back(from.0);
        while let Some(u) = self.frontier.pop_front() {
            let u = VertexId(u);
            for &v in graph.neighbors(u) {
                if self.seen[v.index()] == epoch
                    || Some(v) == ban
                    || closed.blocks(v)
                    || !self.edge_allowed(graph, u, v)
                {
                    continue;
                }
                self.seen[v.index()] = epoch;
                self.parent[v.index()] = u.0;
                if v == to {
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != from {
                        cur = VertexId(self.parent[cur.index()]);
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                self.frontier.push_back(v.0);
            }
        }
        None
    }

    /// A drift walk out of `from`: one field-allowed step (preferring an
    /// empty cell, then the lowest vertex index), then straight along the
    /// field while the corridor stays one cell wide, stopping at the
    /// first junction (3+ free neighbors — room for traffic to pass).
    /// Used to clear nudged blockers and to walk agents off stations
    /// after their final drop. Always returns a path starting at `from`
    /// (length 1 when the cell has no exit).
    pub(crate) fn drift_walk(
        &self,
        graph: &FloorplanGraph,
        from: VertexId,
        occupant: &[u32],
        closed: ClosedSet<'_>,
    ) -> Vec<VertexId> {
        let mut path = vec![from];
        let mut first: Option<(bool, u32)> = None;
        for &v in graph.neighbors(from) {
            if closed.blocks(v) || !self.edge_allowed(graph, from, v) {
                continue;
            }
            let occupied = occupant[v.index()] != NO_INDEX;
            if first.is_none_or(|(bo, bv)| (occupied, v.0) < (bo, bv)) {
                first = Some((occupied, v.0));
            }
        }
        let Some((_, v)) = first else { return path };
        let mut prev = from;
        let mut cur = VertexId(v);
        path.push(cur);
        while path.len() < 2_048 && graph.neighbors(cur).len() < 3 {
            let next = graph
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| w != prev && !closed.blocks(w) && self.edge_allowed(graph, cur, w));
            let Some(w) = next else { break };
            if w == from {
                break;
            }
            path.push(w);
            prev = cur;
            cur = w;
        }
        path
    }
}

/// Field-directed BFS distances over the whole graph: from `source`
/// outward (`reverse == false`, "how far from the station") or from
/// everywhere into `source` (`reverse == true`, "how far to the
/// station").
fn directed_distances(
    graph: &FloorplanGraph,
    relaxed: &[bool],
    source: VertexId,
    reverse: bool,
) -> Vec<u32> {
    let allowed = |u: VertexId, v: VertexId| {
        parity_allows(graph.coord(u), graph.coord(v)) || relaxed[u.index()] || relaxed[v.index()]
    };
    let mut dist = vec![u32::MAX; graph.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        for &w in graph.neighbors(u) {
            let ok = if reverse {
                allowed(w, u)
            } else {
                allowed(u, w)
            };
            if ok && dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_agent_is_a_pure_min_by_cost_then_index() {
        let bids = [
            AgentBid { agent: 7, cost: 3 },
            AgentBid { agent: 2, cost: 3 },
            AgentBid { agent: 5, cost: 1 },
        ];
        assert_eq!(select_agent(&bids), Some(AgentBid { agent: 5, cost: 1 }));
        let mut rev = bids;
        rev.reverse();
        assert_eq!(select_agent(&rev), select_agent(&bids));
        assert_eq!(select_agent(&[]), None);
        // Equal costs break toward the lower agent index.
        assert_eq!(
            select_agent(&bids[..2]),
            Some(AgentBid { agent: 2, cost: 3 })
        );
    }

    #[test]
    fn parity_field_is_antisymmetric_on_unrelaxed_edges() {
        // One cell per quadrant of parity: exactly one direction each.
        for (a, b) in [
            (Coord::new(4, 2), Coord::new(5, 2)), // even row: east only
            (Coord::new(4, 3), Coord::new(5, 3)), // odd row: west only
            (Coord::new(4, 2), Coord::new(4, 3)), // even col: north only
            (Coord::new(5, 2), Coord::new(5, 3)), // odd col: south only
        ] {
            assert_ne!(parity_allows(a, b), parity_allows(b, a));
        }
    }

    use proptest::prelude::*;

    /// The pre-cache site pickers, reconstructed fresh: full scans over
    /// every `(station, site)` pair with a `units_at` lookup each — the
    /// behaviour [`AuctionState::pick_station_site`] and
    /// [`AuctionState::pick_followup`] replaced with cached sorted lists.
    fn oracle_station_site(
        auc: &AuctionState,
        sites: &[Vec<VertexId>],
        product: ProductId,
        bias: u32,
    ) -> Option<(u16, VertexId)> {
        let mut best: Option<(u64, u16, VertexId)> = None;
        for q in 0..auc.stations.len() {
            let near = sites[product.index()]
                .iter()
                .filter(|&&s| auc.reserved.units_at(s, product) > 0)
                .filter_map(|&s| {
                    let d = auc.to_station[q][s.index()];
                    (d != u32::MAX).then_some((d, s))
                })
                .min_by_key(|&(d, s)| (d, s.index()));
            let Some((d, s)) = near else { continue };
            let cost = u64::from(d) + u64::from(bias) * u64::from(auc.open[q]);
            if best.is_none_or(|(bc, bq, _)| (cost, q as u16) < (bc, bq)) {
                best = Some((cost, q as u16, s));
            }
        }
        best.map(|(_, q, s)| (q, s))
    }

    fn oracle_followup(
        auc: &AuctionState,
        from_station: &[Vec<u32>],
        sites: &[Vec<VertexId>],
        product: ProductId,
        from: u16,
        bias: u32,
    ) -> Option<(u16, VertexId)> {
        let mut best: Option<(u64, u16, VertexId)> = None;
        for &s in &sites[product.index()] {
            if auc.reserved.units_at(s, product) == 0 {
                continue;
            }
            let d_out = from_station[from as usize][s.index()];
            if d_out == u32::MAX {
                continue;
            }
            for q in 0..auc.stations.len() {
                let d_in = auc.to_station[q][s.index()];
                if d_in == u32::MAX {
                    continue;
                }
                let cost =
                    u64::from(d_out) + u64::from(d_in) + u64::from(bias) * u64::from(auc.open[q]);
                if best
                    .is_none_or(|(bc, bq, bs)| (cost, q as u16, s.index()) < (bc, bq, bs.index()))
                {
                    best = Some((cost, q as u16, s));
                }
            }
        }
        best.map(|(_, q, s)| (q, s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The distance-field cache agrees with fresh computations on
        /// random scaled-warehouse instances: every anchor field equals a
        /// fresh full [`FloorplanGraph::bfs_distances`], and both cached
        /// site pickers return exactly what the pre-cache full scans
        /// return — under random station pressure and as random
        /// assignment-style reservations monotonically drain the stock.
        #[test]
        fn cached_fields_and_pickers_agree_with_fresh_scans(
            map_seed in 0u64..50,
            opens in proptest::collection::vec(0u32..5, 16),
            ops in proptest::collection::vec((0usize..64, 0u32..3, 0usize..16), 1..80),
        ) {
            let map = wsp_maps::scaled_warehouse(5, 40, 3, map_seed)
                .expect("small scaled map builds");
            let warehouse = &map.warehouse;
            let graph = warehouse.graph();
            let mut auc = AuctionState::new(warehouse, 8);

            // Anchor fields: cached == fresh full BFS.
            for (q, &a) in auc.anchors.clone().iter().enumerate() {
                prop_assert_eq!(auc.fields.anchor_field(q), &graph.bfs_distances(a)[..]);
            }

            // Rebuild the site lists the constructor derived (the oracle
            // scans them the way the pre-cache pickers did).
            let mut sites: Vec<Vec<VertexId>> = vec![Vec::new(); warehouse.catalog().len()];
            for (v, p, units) in warehouse.location_matrix().iter() {
                if units > 0 {
                    sites[p.index()].push(v);
                }
            }
            for list in &mut sites {
                list.sort_unstable_by_key(|v| v.index());
                list.dedup();
            }
            let from_station: Vec<Vec<u32>> = auc
                .stations
                .iter()
                .map(|&s| directed_distances(graph, &auc.relaxed, s, false))
                .collect();

            for (i, &q) in opens.iter().enumerate() {
                if i < auc.open.len() {
                    auc.open[i] = q;
                }
            }
            let products = warehouse.catalog().len();
            let stations = auc.stations.len();
            for &(raw_p, bias, raw_q) in &ops {
                let product = ProductId((raw_p % products) as u32);
                let from = (raw_q % stations) as u16;
                let expect_first = oracle_station_site(&auc, &sites, product, bias);
                prop_assert_eq!(auc.pick_station_site(product, bias), expect_first);
                let expect_follow =
                    oracle_followup(&auc, &from_station, &sites, product, from, bias);
                prop_assert_eq!(auc.pick_followup(product, from, bias), expect_follow);
                // Reserve one unit at the picked site, exactly like an
                // assignment commit — the only way stock ever changes.
                if let Some((_, s)) = expect_first {
                    auc.reserved.remove_units(s, product, 1);
                }
            }
        }
    }
}
