//! The seeded stochastic task stream: a product mix (typically a
//! [`Workload`] from `MapInstance::zipf_workload` or `uniform_workload`)
//! expanded into individually timed task arrivals.
//!
//! The whole schedule is a pure function of `(mix, mean_gap, seed)` —
//! arrival order and times never depend on how the simulation unfolds, so
//! two runs of the same configuration see byte-identical streams.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wsp_model::{ProductId, Workload};

/// Configuration of the arrival stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The product mix: each unit of demand becomes one task. Build it
    /// with `MapInstance::zipf_workload` for skewed sorting-center
    /// arrivals, or `uniform_workload` for flat ones.
    pub mix: Workload,
    /// Mean ticks between consecutive arrivals; each gap is drawn
    /// uniformly from `0 ..= 2 × mean_gap` (so `0` front-loads the whole
    /// mix at tick 0).
    pub mean_gap: u32,
    /// Seed for the arrival permutation and the gaps.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            mix: Workload::default(),
            mean_gap: 4,
            seed: 0x5eed,
        }
    }
}

/// One task: bring a unit of `product` to any station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// The demanded product.
    pub product: ProductId,
    /// Arrival tick.
    pub arrival: u64,
}

/// The precomputed, seed-deterministic arrival schedule.
#[derive(Debug, Clone)]
pub struct TaskStream {
    tasks: Vec<Task>,
    next: usize,
}

impl TaskStream {
    /// Expands the mix into a shuffled, gap-timed schedule.
    pub fn new(config: &StreamConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut products: Vec<ProductId> = Vec::new();
        for (p, demand) in config.mix.iter() {
            for _ in 0..demand {
                products.push(p);
            }
        }
        products.shuffle(&mut rng);
        let mut tasks = Vec::with_capacity(products.len());
        let mut tick = 0u64;
        for product in products {
            tick += rng.gen_range(0..2 * u64::from(config.mean_gap) + 1);
            tasks.push(Task {
                product,
                arrival: tick,
            });
        }
        TaskStream { tasks, next: 0 }
    }

    /// Total tasks in the schedule.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tick of the last arrival, if any.
    pub fn last_arrival(&self) -> Option<u64> {
        self.tasks.last().map(|t| t.arrival)
    }

    /// Tick of the next undelivered arrival, if any — the event-driven
    /// engine's "next task event" lookahead; never earlier than the last
    /// `arrivals_at` tick.
    pub fn next_arrival(&self) -> Option<u64> {
        self.tasks.get(self.next).map(|t| t.arrival)
    }

    /// Pops every task arriving at tick `t` (call with strictly increasing
    /// `t`; earlier stragglers are delivered too, so a skipped tick loses
    /// nothing).
    pub fn arrivals_at(&mut self, t: u64) -> &[Task] {
        let start = self.next;
        while self.next < self.tasks.len() && self.tasks[self.next].arrival <= t {
            self.next += 1;
        }
        &self.tasks[start..self.next]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mean_gap: u32, seed: u64) -> StreamConfig {
        StreamConfig {
            mix: Workload::from_demands(vec![3, 0, 5, 2]),
            mean_gap,
            seed,
        }
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let a = TaskStream::new(&config(4, 9));
        let b = TaskStream::new(&config(4, 9));
        assert_eq!(a.tasks, b.tasks);
        let c = TaskStream::new(&config(4, 10));
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn every_mix_unit_becomes_one_task_in_arrival_order() {
        let mut stream = TaskStream::new(&config(3, 1));
        assert_eq!(stream.len(), 10);
        let mut per_product = [0u64; 4];
        let mut last = 0u64;
        let horizon = stream.last_arrival().unwrap();
        for t in 0..=horizon {
            for task in stream.arrivals_at(t) {
                assert!(task.arrival >= last);
                last = task.arrival;
                per_product[task.product.index()] += 1;
            }
        }
        assert_eq!(per_product, [3, 0, 5, 2]);
    }

    #[test]
    fn zero_gap_front_loads_everything() {
        let mut stream = TaskStream::new(&config(0, 5));
        assert_eq!(stream.arrivals_at(0).len(), 10);
        assert!(stream.arrivals_at(1).is_empty());
    }
}
