//! Direct cycle-set construction: a valid (capacity-respecting,
//! carry-consistent) [`AgentCycleSet`] built straight from the traffic
//! system, without the flow-synthesis ILP.
//!
//! The optimizing pipeline is the right tool at paper scale, but the ILP
//! does not reach 10k–200k-vertex instances. The simulator only needs *a*
//! valid design to execute, so this builder round-robins shelving rows
//! against station queues: each agent cycle travels
//! `shelf row → … → station queue → … → back`, picking up a product
//! stocked on its row and dropping it at the station. Every cycle is
//! validated by realization's own preconditions (Property 4.1 capacities,
//! arc existence, carry consistency), so anything this builder returns is
//! realizable.

use wsp_flow::{AgentCycle, AgentCycleSet, CycleAction, CycleStep};
use wsp_model::{ProductId, Warehouse};
use wsp_traffic::{ComponentId, ComponentKind, TrafficSystem};

/// Builds cycles over `traffic` until the team reaches about `max_agents`
/// **agents** (the cycle model places one agent per cycle *step*, so on a
/// ring-shaped traffic system one cycle already fields a ring's worth of
/// agents), pairing shelving rows with station queues in round-robin order
/// and skipping any cycle that would push a component past its Property
/// 4.1 capacity.
///
/// The first realizable cycle is always added even when it alone exceeds
/// `max_agents` (a ring cannot be executed by less than a full cycle);
/// afterwards, cycles are added only while they fit the budget. The result
/// is empty only if the traffic system has no stocked shelving row or no
/// station queue.
pub fn direct_cycle_set(
    warehouse: &Warehouse,
    traffic: &TrafficSystem,
    max_agents: usize,
) -> AgentCycleSet {
    // Shelving rows paired with a product actually stocked on them.
    let stocked: Vec<(ComponentId, ProductId)> = traffic
        .shelving_rows()
        .filter_map(|id| {
            traffic
                .component(id)
                .path()
                .iter()
                .find_map(|&v| warehouse.location_matrix().products_at(v).next())
                .map(|(p, _)| (id, p))
        })
        .collect();
    let stations: Vec<ComponentId> = traffic.station_queues().collect();
    if stocked.is_empty() || stations.is_empty() {
        return AgentCycleSet::new(Vec::new(), traffic.cycle_time());
    }

    // Rank every (row, station) pair by outbound component distance: the
    // pickup→drop-off distance (in cycle steps, each worth one period)
    // dominates task latency, so the builder mirrors what any sane
    // dispatcher would do and pairs rows with downstream-adjacent
    // stations first (on ring-shaped systems most stations sit almost a
    // full revolution from most rows — only the closest pairs deliver
    // within a few periods).
    let mut pairs: Vec<(usize, ComponentId, ProductId, ComponentId)> = Vec::new();
    for &(row, product) in &stocked {
        for &station in &stations {
            if let Some(path) = traffic.component_path(row, station) {
                pairs.push((path.len(), row, product, station));
            }
        }
    }
    if pairs.is_empty() {
        return AgentCycleSet::new(Vec::new(), traffic.cycle_time());
    }
    pairs.sort_unstable_by_key(|&(len, r, _, q)| (len, r.index(), q.index()));

    let mut occupancy = vec![0usize; traffic.component_count()];
    let mut cycles: Vec<AgentCycle> = Vec::new();
    let mut total_agents = 0usize;
    'outer: for k in 0..max_agents.max(1) {
        if total_agents >= max_agents {
            break;
        }
        let (_, row, product, station) = pairs[k % pairs.len()];
        let Some(out) = traffic.component_path(row, station) else {
            continue;
        };
        let Some(back) = traffic.component_path(station, row) else {
            continue;
        };
        // row → … → station → … → (row): drop the duplicated endpoints.
        let mut ring: Vec<ComponentId> = out;
        ring.extend(back.into_iter().skip(1));
        ring.pop();
        // Budget: one agent per step; only the first cycle may overshoot.
        if !cycles.is_empty() && total_agents + ring.len() > max_agents {
            break;
        }
        // A component visited twice would turn the pickup/drop-off pair
        // inconsistent (and complicate capacity accounting): skip such
        // rings (cannot happen on loop-shaped systems like the snake).
        let mut sorted = ring.clone();
        sorted.sort_unstable_by_key(|c| c.index());
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            continue;
        }
        // Capacity check across the whole prospective cycle.
        for &c in &ring {
            if occupancy[c.index()] + 1 > traffic.component(c).capacity() {
                continue 'outer;
            }
        }
        total_agents += ring.len();
        for &c in &ring {
            occupancy[c.index()] += 1;
        }
        let steps = ring
            .iter()
            .map(|&c| CycleStep {
                component: c,
                action: if c == row {
                    CycleAction::Pickup(product)
                } else if c == station && traffic.component(c).kind() == ComponentKind::StationQueue
                {
                    CycleAction::Dropoff(product)
                } else {
                    CycleAction::Travel
                },
            })
            .collect();
        cycles.push(AgentCycle::new(steps));
    }
    AgentCycleSet::new(cycles, traffic.cycle_time())
}
