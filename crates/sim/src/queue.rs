//! A monotone bucket (calendar) queue keyed by absolute tick.
//!
//! The event-driven engine schedules almost everything inside the current
//! rolling-horizon window (wake-ups at most `window_len` ticks out,
//! replan-lag crossings at most `window + replan_lag`), so a power-of-two
//! ring of per-tick buckets indexed by `tick & mask` gives O(1) push and
//! O(due span) drain with zero per-event allocation in steady state; the
//! rare beyond-ring event (a long stall reaching past the window) falls
//! into a linear `overflow` list that is almost always empty.
//!
//! The queue is *monotone*: `drain_due(t)` must be called with
//! non-decreasing `t`, and pushes below the drain front are rejected
//! (debug-asserted). Payloads are opaque `u64`s — the engine packs
//! event kind, agent, and a staleness sequence number into them (see
//! [`crate::event`]), so cancelling an event is just letting its stale
//! payload pop and fail the sequence check.

/// Monotone tick-keyed bucket queue with opaque `u64` payloads.
#[derive(Debug)]
pub struct BucketQueue {
    /// Ring of per-tick buckets; `buckets[tick & mask]` holds the
    /// payloads due at `tick` for every in-ring tick.
    buckets: Vec<Vec<u64>>,
    /// Index mask (`buckets.len() - 1`; the length is a power of two).
    mask: u64,
    /// Drain front: every stored entry is due at `base` or later, and
    /// ring entries are due strictly before `base + buckets.len()`.
    base: u64,
    /// Events due at or beyond `base + buckets.len()` at push time.
    overflow: Vec<(u64, u64)>,
    /// Total stored payloads (ring + overflow).
    len: usize,
}

impl BucketQueue {
    /// Builds a queue whose ring spans at least `min_span + 2` ticks
    /// (enough for a full window of wake-ups plus the boundary tick).
    pub fn new(min_span: usize) -> Self {
        let slots = (min_span + 2).next_power_of_two().max(8);
        BucketQueue {
            buckets: (0..slots).map(|_| Vec::new()).collect(),
            mask: slots as u64 - 1,
            base: 0,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Stored payload count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no payloads are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at absolute `tick` (which must be at or after
    /// the current drain front; a behind-the-front tick is a scheduling
    /// bug, debug-asserted, and is clamped to the front in release so the
    /// event fires at the next drain instead of aliasing an
    /// already-drained ring slot and silently firing one full ring lap
    /// late).
    pub fn push(&mut self, tick: u64, payload: u64) {
        debug_assert!(
            tick >= self.base,
            "event scheduled at {tick}, behind the drain front {}",
            self.base
        );
        let tick = tick.max(self.base);
        if tick < self.base + self.buckets.len() as u64 {
            self.buckets[(tick & self.mask) as usize].push(payload);
        } else {
            self.overflow.push((tick, payload));
        }
        self.len += 1;
    }

    /// Pops every payload due at or before `t` (in push order per tick,
    /// ascending ticks first, overflow stragglers last) and advances the
    /// drain front to `t + 1`. `t` must be non-decreasing across calls.
    pub fn drain_due(&mut self, t: u64, mut apply: impl FnMut(u64)) {
        if self.len > 0 {
            // Ring entries live in [base, base + slots); once `t` passes
            // the ring end they are all due, so one lap suffices.
            for tick in self.base..=t.min(self.base + self.mask) {
                let bucket = &mut self.buckets[(tick & self.mask) as usize];
                self.len -= bucket.len();
                for payload in bucket.drain(..) {
                    apply(payload);
                }
            }
            if !self.overflow.is_empty() {
                // Overflow entries are never re-filed into the ring; a
                // linear sweep here keeps them honest as the front moves.
                let mut i = 0;
                while i < self.overflow.len() {
                    if self.overflow[i].0 <= t {
                        let (_, payload) = self.overflow.swap_remove(i);
                        self.len -= 1;
                        apply(payload);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.base = self.base.max(t + 1);
    }

    /// Earliest tick in `[from, cap]` holding an event, if any. `from`
    /// must be at or after the drain front.
    pub fn next_event(&self, from: u64, cap: u64) -> Option<u64> {
        debug_assert!(from >= self.base);
        if self.len == 0 {
            return None;
        }
        let mut best = None;
        let ring_cap = cap.min(self.base + self.mask);
        let mut tick = from.max(self.base);
        while tick <= ring_cap {
            if !self.buckets[(tick & self.mask) as usize].is_empty() {
                best = Some(tick);
                break;
            }
            tick += 1;
        }
        for &(tick, _) in &self.overflow {
            if tick >= from && tick <= cap {
                best = Some(best.map_or(tick, |b| b.min(tick)));
            }
        }
        best
    }

    /// Drops every stored event and re-anchors the drain front at `base`
    /// (the engine does this at each replan: the replan wakes everyone, so
    /// every outstanding wake-up and crossing check is void).
    pub fn clear(&mut self, base: u64) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.len = 0;
        self.base = base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order_with_intra_tick_fifo() {
        let mut q = BucketQueue::new(16);
        q.push(5, 50);
        q.push(3, 30);
        q.push(5, 51);
        q.push(0, 1);
        let mut out = Vec::new();
        q.drain_due(4, |p| out.push(p));
        assert_eq!(out, [1, 30]);
        assert_eq!(q.len(), 2);
        out.clear();
        q.drain_due(9, |p| out.push(p));
        assert_eq!(out, [50, 51]);
        assert!(q.is_empty());
    }

    #[test]
    fn next_event_scans_ring_and_overflow() {
        let mut q = BucketQueue::new(4);
        assert_eq!(q.next_event(0, 100), None);
        q.push(6, 60);
        q.push(200, 7); // far beyond the 8-slot ring: overflow
        assert_eq!(q.next_event(0, 100), Some(6));
        assert_eq!(q.next_event(7, 100), None);
        assert_eq!(q.next_event(7, 300), Some(200));
        let mut out = Vec::new();
        q.drain_due(6, |p| out.push(p));
        assert_eq!(out, [60]);
        // The front has moved; the overflow entry surfaces once due.
        out.clear();
        q.drain_due(200, |p| out.push(p));
        assert_eq!(out, [7]);
    }

    /// Regression: in release builds a push behind the drain front used to
    /// pass the `tick < base + slots` ring test and file the payload into
    /// an already-drained slot, so the event only surfaced once the front
    /// wrapped back around — one full ring lap (~a window) late. The clamp
    /// must surface it at the very next drain instead. (In debug builds
    /// the `debug_assert` catches the bad push instead; see the companion
    /// test below.)
    #[test]
    #[cfg(not(debug_assertions))]
    fn behind_front_push_fires_at_the_next_drain_not_a_lap_late() {
        let mut q = BucketQueue::new(6); // 8 ring slots
        q.drain_due(9, |_| {}); // front now at 10
        q.push(5, 55); // behind the front: clamped to 10
        let mut out = Vec::new();
        // The unclamped bug filed this into ring slot 5, which next
        // drains at tick 13 = 5 + 8 — this drain left it stranded.
        q.drain_due(10, |p| out.push(p));
        assert_eq!(out, [55], "behind-front event must fire at the next drain");
        assert!(q.is_empty());
        // next_event must agree with the clamped placement too.
        q.push(3, 33);
        assert_eq!(q.next_event(11, 100), Some(11));
    }

    /// The debug-build contract for the same scheduling bug: it is caught
    /// loudly at push time rather than clamped.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "behind the drain front")]
    fn behind_front_push_panics_in_debug() {
        let mut q = BucketQueue::new(6);
        q.drain_due(9, |_| {});
        q.push(5, 55);
    }

    #[test]
    fn clear_reanchors_the_front() {
        let mut q = BucketQueue::new(8);
        q.push(2, 20);
        q.clear(40);
        assert!(q.is_empty());
        q.push(41, 410);
        let mut out = Vec::new();
        q.drain_due(41, |p| out.push(p));
        assert_eq!(out, [410]);
    }
}
