//! The simulator's headline invariant (mirroring
//! `crates/explore/tests/determinism.rs`): the same seed and configuration
//! produce a byte-identical `SimReport` — canonical JSON and trajectory
//! checksum — at 1, 2, and 4 repair threads, with deviations and repair
//! enabled. Property-tested over random (seeds, gaps, window) draws, then
//! pinned on one fixed configuration.

use proptest::prelude::*;
use wsp_core::{PipelineOptions, WspInstance};
use wsp_maps::{sorting_center_variant, SortingCenterParams};
use wsp_model::Workload;
use wsp_sim::{DeviationConfig, RepairConfig, SimConfig, Simulation, StreamConfig};

fn small_instance() -> WspInstance {
    let params = SortingCenterParams {
        chute_rows: 3,
        chute_cols: 4,
        stations: 2,
        ..SortingCenterParams::paper()
    };
    let map = sorting_center_variant(&params).expect("variant builds");
    let workload = map.uniform_workload(24);
    WspInstance::new(map.warehouse, map.traffic, workload, 2_000)
}

fn config(
    stream_seed: u64,
    dev_seed: u64,
    mean_gap: u32,
    window: usize,
    threads: usize,
) -> SimConfig {
    SimConfig {
        ticks: 260,
        window,
        stream: StreamConfig {
            mix: Workload::from_demands(vec![3; 12]),
            mean_gap,
            seed: stream_seed,
        },
        deviations: DeviationConfig::stalls(16, 2, 7, dev_seed),
        repair: RepairConfig {
            enabled: true,
            lag_threshold: 3,
            threads: Some(threads),
            ..RepairConfig::default()
        },
        replan_lag: 20,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn repair_thread_count_never_changes_the_report(
        stream_seed in 0u64..1_000,
        dev_seed in 0u64..1_000,
        mean_gap in 1u32..5,
        window in 36usize..90,
    ) {
        let instance = small_instance();
        let options = PipelineOptions::default();
        let mut renderings = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = config(stream_seed, dev_seed, mean_gap, window, threads);
            let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
            let report = sim.run().unwrap();
            prop_assert!(report.counters.conserved());
            renderings.push(report.to_json());
        }
        prop_assert_eq!(&renderings[0], &renderings[1], "2 threads diverged from 1");
        prop_assert_eq!(&renderings[0], &renderings[2], "4 threads diverged from 1");
    }
}

/// One fixed configuration pinned across thread counts *and* repeated
/// runs, with enough deviation pressure that repairs genuinely fire (a
/// thread-count bug cannot hide behind an idle repair stage).
#[test]
fn fixed_scenario_is_thread_count_independent_and_repeatable() {
    let instance = small_instance();
    let options = PipelineOptions::default();
    let run = |threads: usize| {
        let cfg = config(7, 13, 2, 48, threads);
        let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
        let report = sim.run().unwrap();
        (report.to_json(), report)
    };
    let (one, report) = run(1);
    let (one_again, _) = run(1);
    let (two, _) = run(2);
    let (four, _) = run(4);
    assert_eq!(one, one_again, "same-config rerun diverged");
    assert_eq!(one, two);
    assert_eq!(one, four);
    assert!(report.counters.stalls_injected > 0);
    assert!(report.counters.replans > 1);
    assert!(
        report.counters.repairs_attempted > 0,
        "deviation pressure too low to exercise the repair stage: {}",
        report
    );
}

/// The supervised runner (`run_controlled`) must be an unobservable
/// wrapper: chunked execution with progress accounting renders the exact
/// bytes `run()` renders, progress reaches `config.ticks`, and a
/// pre-cancelled control stops the run before it simulates anything.
#[test]
fn controlled_run_is_byte_identical_and_cancellable() {
    let instance = small_instance();
    let options = PipelineOptions::default();

    let mut plain = Simulation::new(&instance, &options, config(7, 13, 2, 48, 1)).unwrap();
    let baseline = plain.run().unwrap().to_json();

    // Chunk sizes straddling the window/elision structure: tiny, odd,
    // and larger than the whole run.
    for chunk in [1u64, 17, 100_000] {
        let control = wsp_core::RunControl::new();
        let mut sim = Simulation::new(&instance, &options, config(7, 13, 2, 48, 1)).unwrap();
        let report = sim.run_controlled(&control, chunk).unwrap();
        assert_eq!(report.to_json(), baseline, "chunk {chunk} diverged");
        assert!(!control.is_cancelled());
        assert_eq!(
            control.progress(),
            260,
            "progress must equal simulated ticks"
        );
    }

    // A cancel observed before the first chunk stops the run immediately.
    let control = wsp_core::RunControl::new();
    control.cancel();
    let mut sim = Simulation::new(&instance, &options, config(7, 13, 2, 48, 1)).unwrap();
    let report = sim.run_controlled(&control, 32).unwrap();
    assert_eq!(report.counters.ticks, 0);
    assert_eq!(control.progress(), 0);

    // A cancel mid-run stops at the next chunk boundary: progress stays
    // short of the configured horizon.
    let control = wsp_core::RunControl::new();
    let mut sim = Simulation::new(&instance, &options, config(7, 13, 2, 48, 1)).unwrap();
    sim.run_ticks(10).unwrap();
    control.cancel();
    let report = sim.run_controlled(&control, 32).unwrap();
    assert_eq!(report.counters.ticks, 10, "cancelled run must not advance");
}
