//! Differential harness for the lifelong assignment layer
//! ([`wsp_sim::AssignPolicy`]):
//!
//! * **Static is bit-for-bit the pre-assignment engine.** The production
//!   10k-vertex scenario must render byte-identically to the golden file
//!   committed *before* the assignment layer landed — this test reads the
//!   umbrella crate's golden directly and never re-blesses, so any drift
//!   in the default policy is a hard failure, not a golden update.
//! * **Auction executions are feasible.** The recorded trajectory of an
//!   auction run passes the independent [`wsp_model::PlanChecker`]
//!   (movement feasibility, stock conservation, delivery accounting).
//! * **Auction keeps the determinism contract.** [`SimEngine::Event`]
//!   and [`SimEngine::Reference`] render byte-identical reports at 1, 2,
//!   and 4 repair threads — elision and repair parallelism stay
//!   unobservable under the new policy too.
//!
//! The 10k scenario is inlined (map, direct cycle set, arrival mix,
//! config) rather than imported: `wsp-bench` depends on `wsp-sim`, so the
//! scenario constructors there would be a dependency cycle. The inlined
//! values mirror `wsp_bench::sim_scenario_scaled(31, 320, 400, 5)` +
//! `SimScenario::config(600)` exactly; the byte-comparison against the
//! golden is what keeps them from drifting apart.

use std::collections::BTreeSet;
use std::path::PathBuf;

use wsp_core::WspInstance;
use wsp_model::{PlanChecker, ProductId, Workload};
use wsp_sim::{
    direct_cycle_set, AssignPolicy, DeviationConfig, RepairConfig, SimConfig, SimEngine,
    Simulation, StreamConfig,
};

/// The production 10k-vertex scenario, inlined from `wsp-bench` (see the
/// module docs for why). Returns the instance, cycle set, and arrival mix.
fn scaled_10k_scenario() -> (WspInstance, wsp_flow::AgentCycleSet, Workload) {
    let map = wsp_maps::scaled_warehouse(31, 320, 3, 5).expect("scaled map builds");
    let instance = WspInstance::new(map.warehouse, map.traffic, Workload::zeros(0), 0);
    let cycles = direct_cycle_set(&instance.warehouse, &instance.traffic, 400);
    assert!(
        cycles.total_agents() > 0,
        "direct cycles produced no agents"
    );
    let mut mix = Workload::zeros(instance.warehouse.catalog().len());
    let delivered: BTreeSet<ProductId> = cycles
        .cycles()
        .iter()
        .flat_map(|c| c.delivered_products())
        .collect();
    for &p in &delivered {
        mix.set(p, 400 / delivered.len() as u64 + 1);
    }
    (instance, cycles, mix)
}

/// The bench config for the scenario above (`SimScenario::config`),
/// inlined for the same reason.
fn scaled_config(mix: Workload, ticks: u64) -> SimConfig {
    SimConfig {
        ticks,
        stream: StreamConfig {
            mix,
            mean_gap: 2,
            seed: 7,
        },
        deviations: DeviationConfig::stalls(64, 2, 8, 9),
        repair: RepairConfig {
            enabled: true,
            ..RepairConfig::default()
        },
        replan_lag: 24,
        ..SimConfig::default()
    }
}

/// A small (~400-vertex) scenario with the same shape, sized so the
/// Reference oracle is cheap enough to run repeatedly.
fn small_scenario() -> (WspInstance, wsp_flow::AgentCycleSet, Workload) {
    let map = wsp_maps::scaled_warehouse(5, 40, 3, 5).expect("small scaled map builds");
    let instance = WspInstance::new(map.warehouse, map.traffic, Workload::zeros(0), 0);
    let cycles = direct_cycle_set(&instance.warehouse, &instance.traffic, 24);
    assert!(
        cycles.total_agents() > 0,
        "direct cycles produced no agents"
    );
    let mut mix = Workload::zeros(instance.warehouse.catalog().len());
    let delivered: BTreeSet<ProductId> = cycles
        .cycles()
        .iter()
        .flat_map(|c| c.delivered_products())
        .collect();
    for &p in &delivered {
        mix.set(p, 60 / delivered.len() as u64 + 1);
    }
    (instance, cycles, mix)
}

/// Default (`Static`) policy must stay byte-identical to the golden file
/// blessed before the assignment layer existed. Read-only: this test has
/// no bless path on purpose — a mismatch here means the Static engine
/// changed behavior, which the assignment PR promises not to do.
#[test]
fn static_policy_matches_the_pre_assignment_golden_byte_for_byte() {
    let (instance, cycles, mix) = scaled_10k_scenario();
    assert!(
        instance.warehouse.graph().vertex_count() >= 10_000,
        "scenario must stay production-scale"
    );
    let config = scaled_config(mix, 600);
    assert_eq!(config.assign.policy, AssignPolicy::Static, "default policy");
    let mut sim = Simulation::from_cycles(&instance, cycles, config).expect("scenario simulates");
    let report = sim.run().expect("runs to the tick budget");
    let golden: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "..",
        "..",
        "tests",
        "golden",
        "sim_scaled_warehouse_10k.json",
    ]
    .iter()
    .collect();
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden {} ({e})", golden.display()));
    assert_eq!(
        report.to_json(),
        expected,
        "Static policy diverged from the pre-assignment golden — the \
         assignment layer must leave the default engine bit-for-bit alone"
    );
}

/// Auction executions stay feasible: the recorded trajectory passes the
/// independent plan checker, and the policy actually completes work.
#[test]
fn auction_execution_passes_the_plan_checker() {
    let (instance, cycles, mix) = small_scenario();
    let warehouse = instance.warehouse.clone();
    let mut config = scaled_config(mix, 600);
    config.assign.policy = AssignPolicy::Auction;
    config.record = true;
    let mut sim = Simulation::from_cycles(&instance, cycles, config).expect("scenario simulates");
    let report = sim.run().expect("runs to the tick budget");
    assert!(report.counters.conserved(), "{report}");
    assert!(
        report.counters.completed > 0,
        "auction completed nothing: {report}"
    );
    assert!(
        report.counters.assignments_made > 0,
        "auction made no assignments: {report}"
    );
    let executed = sim.executed_plan().expect("recording on");
    PlanChecker::new(&warehouse)
        .check(executed)
        .expect("auction execution stays feasible");
}

/// The determinism contract under Auction: event engine vs reference
/// oracle, byte-identical reports at 1, 2, and 4 repair threads, with
/// deviations and repair enabled throughout.
#[test]
fn auction_event_engine_matches_reference_at_every_thread_count() {
    let (instance, cycles, mix) = small_scenario();
    for threads in [1usize, 2, 4] {
        let run = |engine| {
            let mut config = scaled_config(mix.clone(), 600);
            config.assign.policy = AssignPolicy::Auction;
            config.engine = engine;
            config.repair.threads = Some(threads);
            let mut sim = Simulation::from_cycles(&instance, cycles.clone(), config)
                .expect("scenario simulates");
            sim.run().expect("runs to the tick budget")
        };
        let event = run(SimEngine::Event);
        let reference = run(SimEngine::Reference);
        assert!(event.counters.conserved());
        assert_eq!(
            event.to_json(),
            reference.to_json(),
            "auction event engine diverged from reference at {threads} threads"
        );
    }
}
