//! Differential tests: the simulator, the one-shot realizer, and the
//! independent plan checker as mutual oracles.
//!
//! * Deviation-free, the executed trajectories must equal the statically
//!   realized `Plan` **exactly** — same cells, same carries, every tick —
//!   even though the simulator re-realizes window by window and executes
//!   through its own conflict-resolving movement layer.
//! * With deviations (and repair) enabled, the executed plan must still
//!   pass `PlanChecker::check_with_scratch`: stalls may scramble the
//!   schedule, but never into a collision or an illegal handling.

use wsp_core::{Pipeline, PipelineOptions, WspInstance};
use wsp_maps::{sorting_center_variant, SortingCenterParams};
use wsp_model::{CheckScratch, PlanChecker};
use wsp_sim::{DeviationConfig, RepairConfig, SimConfig, Simulation, StreamConfig};

/// A small sorting-center variant that keeps the ILP fast in debug CI.
fn small_instance(t_limit: usize) -> WspInstance {
    let params = SortingCenterParams {
        chute_rows: 3,
        chute_cols: 4,
        stations: 2,
        ..SortingCenterParams::paper()
    };
    let map = sorting_center_variant(&params).expect("variant builds");
    let workload = map.uniform_workload(24);
    WspInstance::new(map.warehouse, map.traffic, workload, t_limit)
}

fn stream_for(instance: &WspInstance, units: u64, mean_gap: u32, seed: u64) -> StreamConfig {
    let n = instance.warehouse.catalog().len();
    let per = units / n as u64;
    let mix = wsp_model::Workload::from_demands(vec![per.max(1); n]);
    StreamConfig {
        mix,
        mean_gap,
        seed,
    }
}

#[test]
fn deviation_free_simulation_reproduces_the_realized_plan_exactly() {
    let ticks = 240u64;
    // Synthesis needs the full servicing horizon; the execution
    // comparison then clips realization to the simulated tick count.
    let instance = small_instance(2_000);
    let options = PipelineOptions {
        realize_full_horizon: true,
        ..PipelineOptions::default()
    };

    // Reference: the one-shot pipeline realization over `ticks` steps.
    let mut pipeline = Pipeline::new();
    let flow = pipeline.synthesize(&instance, &options).unwrap();
    let cycles = pipeline.decompose(&flow).unwrap();
    let mut clipped = instance.clone();
    clipped.t_limit = ticks as usize;
    let reference = pipeline.realize(&clipped, &options, &cycles).unwrap();
    assert_eq!(reference.outcome.plan.horizon(), ticks as usize);

    // The simulator, windowed (window deliberately not dividing the
    // horizon) and deviation-free.
    let config = SimConfig {
        ticks,
        window: 52,
        stream: stream_for(&instance, 240, 3, 11),
        deviations: DeviationConfig::none(),
        record: true,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&instance, &options, config).unwrap();
    let report = sim.run().unwrap();
    let executed = sim.executed_plan().expect("recording enabled");

    assert_eq!(executed.horizon(), ticks as usize);
    assert_eq!(executed.agent_count(), reference.outcome.agents);
    for a in 0..executed.agent_count() {
        assert_eq!(
            executed.trajectory(a),
            reference.outcome.plan.trajectory(a),
            "agent {a} diverged from the one-shot realization"
        );
    }
    // Deviation-free: every move the plan scheduled was executed.
    assert!(report.counters.conserved());
    assert_eq!(report.counters.max_lag, 0);
    assert_eq!(report.counters.stalls_injected, 0);

    // The checker agrees with the simulator's own delivery accounting.
    let checker = PlanChecker::new(&instance.warehouse);
    let mut scratch = CheckScratch::new();
    let stats = checker.check_with_scratch(executed, &mut scratch).unwrap();
    assert_eq!(
        stats.delivered.iter().sum::<u64>(),
        report.counters.delivered
    );
    assert_eq!(stats.moves, report.counters.moves);
    assert_eq!(stats.waits, report.counters.waits);
}

#[test]
fn deviated_execution_still_passes_the_plan_checker() {
    let ticks = 400u64;
    let instance = small_instance(2_000);
    let options = PipelineOptions {
        realize_full_horizon: true,
        ..PipelineOptions::default()
    };
    let checker = PlanChecker::new(&instance.warehouse);
    let mut scratch = CheckScratch::new();

    for (dev_seed, repair_on) in [(3u64, false), (3, true), (99, true)] {
        let config = SimConfig {
            ticks,
            window: 48,
            stream: stream_for(&instance, 400, 2, 5),
            deviations: DeviationConfig::stalls(18, 2, 9, dev_seed),
            repair: RepairConfig {
                enabled: repair_on,
                lag_threshold: 3,
                ..RepairConfig::default()
            },
            replan_lag: 16,
            record: true,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(&instance, &options, config).unwrap();
        let report = sim.run().unwrap();
        assert!(report.counters.stalls_injected > 0, "seed {dev_seed}");
        assert!(report.counters.conserved());

        // The scrambled execution is still feasible: conditions (1)–(3)
        // plus inventory accounting, via the independent checker.
        let executed = sim.executed_plan().expect("recording enabled");
        let stats = checker
            .check_with_scratch(executed, &mut scratch)
            .unwrap_or_else(|e| {
                panic!("deviated run (seed {dev_seed}, repair {repair_on}) infeasible: {e}")
            });
        assert_eq!(
            stats.delivered.iter().sum::<u64>(),
            report.counters.delivered
        );
        // Deviations cost throughput, never correctness: the run still
        // moves and delivers.
        assert!(report.counters.moves > 0);
        assert!(report.counters.delivered > 0);
    }
}

#[test]
fn conservation_holds_at_every_single_tick() {
    let ticks = 300u64;
    let instance = small_instance(2_000);
    let options = PipelineOptions::default();
    let config = SimConfig {
        ticks,
        stream: stream_for(&instance, 300, 2, 21),
        deviations: DeviationConfig::stalls(25, 2, 6, 4),
        repair: RepairConfig {
            enabled: true,
            ..RepairConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&instance, &options, config).unwrap();
    for tick in 0..ticks {
        sim.step().unwrap();
        let c = sim.counters();
        assert!(
            c.conserved(),
            "tick {tick}: {} injected != {} + {} + {}",
            c.injected,
            c.completed,
            c.in_flight,
            c.queued
        );
    }
    let final_report = sim.report();
    assert!(final_report.counters.injected > 0);
    assert!(final_report.counters.completed > 0);
}
