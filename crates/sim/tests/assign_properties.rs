//! Property tests for the lifelong assignment layer: the two invariants
//! the auction policy must hold under adversarial schedules.
//!
//! * **Task conservation, per tick.** `injected == completed + in_flight
//!   + queued` after *every single tick* under [`AssignPolicy::Auction`]
//!   with stall deviations and MAPF repair enabled — the engine's
//!   internal `debug_assert` promoted to a release-mode property over
//!   random seed draws, observed through `run_ticks(1)`.
//! * **Assignment determinism.** The matching is a pure function of
//!   `(queue, agent states, tick)`: shuffling the order bids are
//!   presented in never changes the selected agent
//!   ([`wsp_sim::select_agent`] is order-free), and repair thread count
//!   never changes the report (mirroring
//!   `crates/explore/tests/determinism.rs` for the co-design layer).

use std::collections::BTreeSet;

use proptest::prelude::*;
use wsp_core::WspInstance;
use wsp_model::{ProductId, Workload};
use wsp_sim::{
    direct_cycle_set, select_agent, AgentBid, AssignPolicy, DeviationConfig, RepairConfig,
    SimConfig, SimEngine, Simulation, StreamConfig,
};

/// A small (~400-vertex) production-shaped scenario: scaled-warehouse
/// grid, direct cycle set for starts, uniform mix over the products the
/// design can actually deliver.
fn small_scenario(seed: u64) -> (WspInstance, wsp_flow::AgentCycleSet, Workload) {
    let map = wsp_maps::scaled_warehouse(5, 40, 3, seed).expect("small scaled map builds");
    let instance = WspInstance::new(map.warehouse, map.traffic, Workload::zeros(0), 0);
    let cycles = direct_cycle_set(&instance.warehouse, &instance.traffic, 24);
    assert!(
        cycles.total_agents() > 0,
        "direct cycles produced no agents"
    );
    let mut mix = Workload::zeros(instance.warehouse.catalog().len());
    let delivered: BTreeSet<ProductId> = cycles
        .cycles()
        .iter()
        .flat_map(|c| c.delivered_products())
        .collect();
    for &p in &delivered {
        mix.set(p, 60 / delivered.len() as u64 + 1);
    }
    (instance, cycles, mix)
}

fn auction_config(
    mix: Workload,
    ticks: u64,
    stream_seed: u64,
    dev_seed: u64,
    stall_gap: u32,
    threads: usize,
) -> SimConfig {
    let mut config = SimConfig {
        ticks,
        stream: StreamConfig {
            mix,
            mean_gap: 2,
            seed: stream_seed,
        },
        deviations: DeviationConfig::stalls(stall_gap, 2, 8, dev_seed),
        repair: RepairConfig {
            enabled: true,
            threads: Some(threads),
            ..RepairConfig::default()
        },
        replan_lag: 24,
        ..SimConfig::default()
    };
    config.assign.policy = AssignPolicy::Auction;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Conservation after every tick, not just at the end: tasks are
    /// never minted or lost by assignment, batching, rebalancing, stalls,
    /// or repair — under both engines.
    #[test]
    fn auction_conserves_tasks_at_every_single_tick(
        map_seed in 0u64..50,
        stream_seed in 0u64..1_000,
        dev_seed in 0u64..1_000,
        stall_gap in 8u32..64,
    ) {
        let (instance, cycles, mix) = small_scenario(map_seed);
        for engine in [SimEngine::Event, SimEngine::Reference] {
            let mut config =
                auction_config(mix.clone(), 300, stream_seed, dev_seed, stall_gap, 2);
            config.engine = engine;
            let mut sim =
                Simulation::from_cycles(&instance, cycles.clone(), config).unwrap();
            for tick in 0..300u64 {
                sim.run_ticks(1).unwrap();
                let c = sim.counters();
                prop_assert!(
                    c.conserved(),
                    "conservation broke after tick {tick} ({engine:?}): injected {} != \
                     completed {} + in_flight {} + queued {}",
                    c.injected, c.completed, c.in_flight, c.queued
                );
            }
            let report = sim.report();
            prop_assert!(report.counters.assignments_made > 0, "auction idle: {}", report);
        }
    }

    /// `select_agent` is a pure min over `(cost, agent)`: presenting the
    /// same bids in any shuffled order yields the same winner, so the
    /// engine's internal agent iteration order can never leak into the
    /// matching.
    #[test]
    fn bid_selection_is_invariant_under_bid_order(
        costs in proptest::collection::vec(0u32..10_000, 1..40),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let bids: Vec<AgentBid> = costs
            .iter()
            .enumerate()
            .map(|(agent, &cost)| AgentBid { agent: agent as u32, cost })
            .collect();
        let baseline = select_agent(&bids).expect("non-empty");
        // Fisher-Yates with a splitmix-style LCG (the vendored proptest
        // lacks a shuffle strategy).
        let mut shuffled = bids.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let reordered = select_agent(&shuffled).expect("non-empty");
        prop_assert_eq!(baseline.agent, reordered.agent);
        prop_assert_eq!(baseline.cost, reordered.cost);
    }

    /// The dirty-set skip is unobservable: a simulation that skips
    /// provably-no-op assignment passes stays tick-for-tick identical —
    /// same `assignments_made` and `rebalance_moves` after every single
    /// tick, byte-identical final report — to an always-run oracle with
    /// the skip disabled, under both engines and adversarial stalls.
    #[test]
    fn dirty_set_skip_matches_always_run_oracle(
        map_seed in 0u64..50,
        stream_seed in 0u64..1_000,
        dev_seed in 0u64..1_000,
        stall_gap in 8u32..64,
    ) {
        let (instance, cycles, mix) = small_scenario(map_seed);
        for engine in [SimEngine::Event, SimEngine::Reference] {
            let mut config =
                auction_config(mix.clone(), 400, stream_seed, dev_seed, stall_gap, 2);
            config.engine = engine;
            let mut skipping =
                Simulation::from_cycles(&instance, cycles.clone(), config.clone()).unwrap();
            let mut oracle =
                Simulation::from_cycles(&instance, cycles.clone(), config).unwrap();
            oracle.disable_auction_dirty_skip();
            for tick in 0..400u64 {
                skipping.run_ticks(1).unwrap();
                oracle.run_ticks(1).unwrap();
                let (s, o) = (skipping.counters(), oracle.counters());
                prop_assert_eq!(
                    (s.assignments_made, s.rebalance_moves),
                    (o.assignments_made, o.rebalance_moves),
                    "dirty-set skip diverged from the always-run oracle after tick \
                     {} ({:?})",
                    tick,
                    engine
                );
            }
            prop_assert_eq!(
                skipping.report().to_json(),
                oracle.report().to_json(),
                "final report diverged ({:?})",
                engine
            );
        }
    }

    /// Repair thread count never changes the auction matching or the
    /// report: byte-identical renderings at 1, 2, and 4 threads.
    #[test]
    fn auction_report_is_thread_count_independent(
        stream_seed in 0u64..1_000,
        dev_seed in 0u64..1_000,
    ) {
        let (instance, cycles, mix) = small_scenario(5);
        let mut renderings = Vec::new();
        for threads in [1usize, 2, 4] {
            let config =
                auction_config(mix.clone(), 400, stream_seed, dev_seed, 16, threads);
            let mut sim =
                Simulation::from_cycles(&instance, cycles.clone(), config).unwrap();
            let report = sim.run().unwrap();
            prop_assert!(report.counters.conserved());
            renderings.push(report.to_json());
        }
        prop_assert_eq!(&renderings[0], &renderings[1], "2 threads diverged from 1");
        prop_assert_eq!(&renderings[0], &renderings[2], "4 threads diverged from 1");
    }
}
