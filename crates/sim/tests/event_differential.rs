//! The event engine's headline invariant: for identical `(instance,
//! config)`, [`SimEngine::Event`] produces a **byte-identical**
//! `SimReport` JSON rendering — counters, derived metrics, new
//! event/elision counters, and trajectory checksum — to the retained
//! [`SimEngine::Reference`] tick loop, at 1, 2, and 4 repair threads.
//! Elision must be unobservable: the only thing the event engine is
//! allowed to change is how long the run takes.
//!
//! Property-tested over random (seeds, gaps, window, replan-lag) draws
//! with deviations and repair enabled, then pinned on a fixed scenario
//! with enough pressure that stalls, repairs, early replans, *and*
//! genuine elision all occur; a quiet-tail scenario checks the elision
//! fast path actually engages (ticks_elided > 0) without perturbing the
//! report.

use proptest::prelude::*;
use wsp_core::{PipelineOptions, WspInstance};
use wsp_maps::{sorting_center_variant, SortingCenterParams};
use wsp_model::Workload;
use wsp_sim::{
    AssignPolicy, DeviationConfig, FaultConfig, RepairConfig, SimConfig, SimEngine, Simulation,
    StreamConfig,
};

fn small_instance() -> WspInstance {
    let params = SortingCenterParams {
        chute_rows: 3,
        chute_cols: 4,
        stations: 2,
        ..SortingCenterParams::paper()
    };
    let map = sorting_center_variant(&params).expect("variant builds");
    let workload = map.uniform_workload(24);
    WspInstance::new(map.warehouse, map.traffic, workload, 2_000)
}

#[allow(clippy::too_many_arguments)]
fn config(
    engine: SimEngine,
    ticks: u64,
    stream_seed: u64,
    dev_seed: u64,
    stall_gap: u32,
    mean_gap: u32,
    window: usize,
    replan_lag: usize,
    threads: usize,
) -> SimConfig {
    SimConfig {
        ticks,
        window,
        stream: StreamConfig {
            mix: Workload::from_demands(vec![3; 12]),
            mean_gap,
            seed: stream_seed,
        },
        deviations: DeviationConfig::stalls(stall_gap, 2, 7, dev_seed),
        repair: RepairConfig {
            enabled: true,
            lag_threshold: 3,
            threads: Some(threads),
            ..RepairConfig::default()
        },
        replan_lag,
        engine,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn event_engine_matches_reference_byte_for_byte(
        stream_seed in 0u64..1_000,
        dev_seed in 0u64..1_000,
        mean_gap in 1u32..6,
        window in 36usize..90,
        // 0..8 collapses to 0 (boundary-only replans) so both regimes get
        // coverage without a strategy combinator the vendored proptest
        // build lacks.
        raw_replan_lag in 0usize..24,
    ) {
        let replan_lag = if raw_replan_lag < 8 { 0 } else { raw_replan_lag };
        let instance = small_instance();
        let options = PipelineOptions::default();
        for threads in [1usize, 2, 4] {
            let run = |engine| {
                let cfg = config(
                    engine, 260, stream_seed, dev_seed, 16, mean_gap, window, replan_lag, threads,
                );
                let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
                sim.run().unwrap()
            };
            let event = run(SimEngine::Event);
            let reference = run(SimEngine::Reference);
            prop_assert!(event.counters.conserved());
            prop_assert_eq!(
                event.to_json(),
                reference.to_json(),
                "event engine diverged from reference at {} threads",
                threads
            );
        }
    }
}

/// A fixed high-pressure scenario (stalls, repairs, early replans) pinned
/// across engines and thread counts, plus interleaved `run_ticks` /
/// mid-run `report()` calls — mid-run observability must not depend on
/// the engine either.
#[test]
fn fixed_scenario_matches_including_midrun_reports() {
    let instance = small_instance();
    let options = PipelineOptions::default();
    for threads in [1usize, 2, 4] {
        let run = |engine| {
            let cfg = config(engine, 260, 7, 13, 16, 2, 48, 20, threads);
            let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
            let mut midrun = Vec::new();
            for _ in 0..13 {
                sim.run_ticks(20).unwrap();
                midrun.push(sim.report().to_json());
            }
            (midrun, sim.report())
        };
        let (event_mid, event) = run(SimEngine::Event);
        let (reference_mid, reference) = run(SimEngine::Reference);
        assert_eq!(event_mid, reference_mid, "mid-run reports diverged");
        assert_eq!(event.to_json(), reference.to_json());
        assert!(event.counters.stalls_injected > 0);
        assert!(event.counters.repairs_attempted > 0);
        assert_eq!(
            event.counters.events_processed,
            reference.counters.events_processed
        );
    }
}

/// Same pinning with the fault layer on: breakdowns, a station outage,
/// and corridor closures are forced ticks like stalls, so the event
/// engine must reproduce the reference loop byte-for-byte — mid-run
/// reports included — while faults demonstrably fire and shed work.
#[test]
fn fixed_fault_scenario_matches_including_midrun_reports() {
    let instance = small_instance();
    let options = PipelineOptions::default();
    let faults = FaultConfig {
        breakdown_gap: 50,
        breakdown_min_ticks: 10,
        breakdown_max_ticks: 40,
        permanent_permille: 250,
        outage_gap: 90,
        outage_min_ticks: 40,
        outage_max_ticks: 90,
        closure_gap: 70,
        closure_min_ticks: 15,
        closure_max_ticks: 45,
        closure_len: 3,
        seed: 0xfa17,
    };
    for threads in [1usize, 2, 4] {
        let run = |engine| {
            let mut cfg = config(engine, 260, 7, 13, 16, 2, 48, 20, threads);
            cfg.faults = faults;
            let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
            let mut midrun = Vec::new();
            for _ in 0..13 {
                sim.run_ticks(20).unwrap();
                midrun.push(sim.report().to_json());
            }
            (midrun, sim.report())
        };
        let (event_mid, event) = run(SimEngine::Event);
        let (reference_mid, reference) = run(SimEngine::Reference);
        assert_eq!(event_mid, reference_mid, "mid-run fault reports diverged");
        assert_eq!(event.to_json(), reference.to_json());
        assert!(event.counters.conserved());
        assert!(event.counters.faults_injected > 0);
        assert!(event.counters.completed > 0);
    }
}

/// Once the task stream dries up the warehouse goes quiescent: the event
/// engine must actually elide those ticks (that is the whole point) and
/// still report byte-identically, recorded trajectories included.
#[test]
fn quiet_tail_is_elided_but_unobservable() {
    let instance = small_instance();
    let options = PipelineOptions::default();
    let run = |engine| {
        let mut cfg = config(engine, 1_200, 5, 11, 300, 1, 48, 16, 2);
        cfg.record = true;
        let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
        let report = sim.run().unwrap();
        (report, sim.executed_plan().cloned().unwrap())
    };
    let (event, event_plan) = run(SimEngine::Event);
    let (reference, reference_plan) = run(SimEngine::Reference);
    assert_eq!(event.to_json(), reference.to_json());
    assert_eq!(event_plan, reference_plan, "recorded trajectories diverged");
    assert!(
        event.counters.ticks_elided > 0,
        "quiet tail produced no elision: {}",
        event
    );
    assert!(
        event.counters.active_agent_ticks < event.counters.ticks * event.agents / 2,
        "active-agent work did not shrink: {} of {}",
        event.counters.active_agent_ticks,
        event.counters.ticks * event.agents,
    );
}

/// The auction-policy version of the quiet-tail check: once the stream
/// drains and every mission retires, the dirty-set skip lets idle agents
/// sleep `Frozen`, the assignment phase stops running, and the event
/// engine elides the quiet stretch outright — while staying
/// byte-identical to the reference sweep, recorded trajectories and all.
/// Runs on a small scaled-warehouse scenario (the sorting-center variant
/// above can wedge missions permanently under the auction's direction
/// field, which keeps blocked agents awake retrying forever).
#[test]
fn auction_quiet_tail_is_elided_but_unobservable() {
    use std::collections::BTreeSet;
    let map = wsp_maps::scaled_warehouse(5, 40, 3, 5).expect("small scaled map builds");
    let instance = WspInstance::new(map.warehouse, map.traffic, Workload::zeros(0), 0);
    let cycles = wsp_sim::direct_cycle_set(&instance.warehouse, &instance.traffic, 24);
    let mut mix = Workload::zeros(instance.warehouse.catalog().len());
    let delivered: BTreeSet<wsp_model::ProductId> = cycles
        .cycles()
        .iter()
        .flat_map(|c| c.delivered_products())
        .collect();
    for &p in &delivered {
        mix.set(p, 60 / delivered.len() as u64 + 1);
    }
    let run = |engine| {
        let mut cfg = config(engine, 1_200, 5, 11, 300, 1, 48, 16, 2);
        cfg.stream.mix = mix.clone();
        cfg.stream.mean_gap = 2;
        cfg.assign.policy = AssignPolicy::Auction;
        cfg.record = true;
        let mut sim = Simulation::from_cycles(&instance, cycles.clone(), cfg).unwrap();
        let report = sim.run().unwrap();
        (report, sim.executed_plan().cloned().unwrap())
    };
    let (event, event_plan) = run(SimEngine::Event);
    let (reference, reference_plan) = run(SimEngine::Reference);
    assert_eq!(event.to_json(), reference.to_json());
    assert_eq!(event_plan, reference_plan, "recorded trajectories diverged");
    assert!(
        event.counters.completed > 0,
        "auction run delivered nothing: {}",
        event
    );
    assert!(
        event.counters.ticks_elided > 0,
        "auction quiet tail produced no elision: {}",
        event
    );
    assert!(
        event.counters.active_agent_ticks < event.counters.ticks * event.agents / 2,
        "active-agent work did not shrink: {} of {}",
        event.counters.active_agent_ticks,
        event.counters.ticks * event.agents,
    );
}
