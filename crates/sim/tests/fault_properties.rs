//! Fault-injection properties: deterministic chaos (agent breakdowns,
//! station outages, corridor closures) must degrade throughput, never
//! correctness.
//!
//! * Task conservation (`injected == completed + in_flight + queued`)
//!   holds after every single tick: shed tasks re-queue immediately
//!   (`tasks_shed` counts them), they never vanish.
//! * The executed trajectories still pass the independent
//!   [`PlanChecker`]: collision freedom is by construction, faults or
//!   not.
//! * The report stays byte-identical across `SimEngine::{Event,
//!   Reference}` and 1/2/4 repair threads with every fault stream on —
//!   chaos runs are as reproducible as clean ones.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wsp_core::{PipelineOptions, WspInstance};
use wsp_maps::{sorting_center_variant, SortingCenterParams};
use wsp_model::{CheckScratch, PlanChecker, Workload};
use wsp_sim::{
    AssignPolicy, DeviationConfig, FaultConfig, RepairConfig, SimConfig, SimEngine, Simulation,
    StreamConfig,
};

fn small_instance() -> WspInstance {
    let params = SortingCenterParams {
        chute_rows: 3,
        chute_cols: 4,
        stations: 2,
        ..SortingCenterParams::paper()
    };
    let map = sorting_center_variant(&params).expect("variant builds");
    let workload = map.uniform_workload(24);
    WspInstance::new(map.warehouse, map.traffic, workload, 2_000)
}

/// Every fault stream on, dense enough that each is guaranteed to fire
/// within the test horizons (a stream's first event lands within
/// `2 × gap − 1` ticks).
fn chaos(seed: u64) -> FaultConfig {
    FaultConfig {
        breakdown_gap: 60,
        breakdown_min_ticks: 10,
        breakdown_max_ticks: 40,
        permanent_permille: 200,
        outage_gap: 120,
        outage_min_ticks: 30,
        outage_max_ticks: 80,
        closure_gap: 90,
        closure_min_ticks: 15,
        closure_max_ticks: 50,
        closure_len: 3,
        seed,
    }
}

fn static_config(engine: SimEngine, fault_seed: u64, threads: usize) -> SimConfig {
    SimConfig {
        ticks: 320,
        window: 48,
        stream: StreamConfig {
            mix: Workload::from_demands(vec![3; 12]),
            mean_gap: 2,
            seed: 9,
        },
        deviations: DeviationConfig::stalls(40, 2, 6, 17),
        faults: chaos(fault_seed),
        repair: RepairConfig {
            enabled: true,
            lag_threshold: 3,
            threads: Some(threads),
            ..RepairConfig::default()
        },
        replan_lag: 16,
        engine,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Per-tick conservation and end-to-end feasibility under all three
    /// fault kinds on the static policy, both engines.
    #[test]
    fn conservation_and_feasibility_hold_under_chaos(fault_seed in 0u64..1_000) {
        let instance = small_instance();
        let options = PipelineOptions::default();
        let checker = PlanChecker::new(&instance.warehouse);
        let mut scratch = CheckScratch::new();
        for engine in [SimEngine::Event, SimEngine::Reference] {
            let mut cfg = static_config(engine, fault_seed, 1);
            cfg.record = true;
            let ticks = cfg.ticks;
            let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
            for tick in 0..ticks {
                sim.step().unwrap();
                let c = sim.counters();
                prop_assert!(
                    c.conserved(),
                    "tick {}: {} injected != {} + {} + {} (shed {})",
                    tick, c.injected, c.completed, c.in_flight, c.queued, c.tasks_shed,
                );
            }
            let report = sim.report();
            prop_assert!(report.counters.faults_injected > 0, "no fault fired");
            let executed = sim.executed_plan().expect("recording enabled");
            let stats = checker
                .check_with_scratch(executed, &mut scratch)
                .unwrap_or_else(|e| panic!("chaos run (seed {fault_seed}) infeasible: {e}"));
            prop_assert_eq!(
                stats.delivered.iter().sum::<u64>(),
                report.counters.delivered
            );
        }
    }

    /// Chaos is reproducible: byte-identical `SimReport` JSON across
    /// both engines and 1/2/4 repair threads with faults on.
    #[test]
    fn fault_runs_are_engine_and_thread_invariant(fault_seed in 0u64..1_000) {
        let instance = small_instance();
        let options = PipelineOptions::default();
        let mut renderings: Vec<String> = Vec::new();
        for engine in [SimEngine::Event, SimEngine::Reference] {
            for threads in [1usize, 2, 4] {
                let cfg = static_config(engine, fault_seed, threads);
                let mut sim = Simulation::new(&instance, &options, cfg).unwrap();
                let report = sim.run().unwrap();
                prop_assert!(report.counters.conserved());
                renderings.push(report.to_json());
            }
        }
        for r in &renderings[1..] {
            prop_assert_eq!(r, &renderings[0], "fault run diverged across engine/threads");
        }
    }
}

/// The auction policy under chaos: breakdowns shed missions back to the
/// pending queue (in arrival order), outages stop new assignments to
/// dark stations, closures wedge-and-reroute installed routes — and the
/// whole thing stays conserved, feasible, deliverable, and byte-stable
/// across engines.
#[test]
fn auction_chaos_degrades_gracefully_and_deterministically() {
    let map = wsp_maps::scaled_warehouse(5, 40, 3, 5).expect("small scaled map builds");
    let instance = WspInstance::new(map.warehouse, map.traffic, Workload::zeros(0), 0);
    let cycles = wsp_sim::direct_cycle_set(&instance.warehouse, &instance.traffic, 24);
    let mut mix = Workload::zeros(instance.warehouse.catalog().len());
    let delivered: BTreeSet<wsp_model::ProductId> = cycles
        .cycles()
        .iter()
        .flat_map(|c| c.delivered_products())
        .collect();
    for &p in &delivered {
        mix.set(p, 120 / delivered.len() as u64 + 1);
    }
    let checker = PlanChecker::new(&instance.warehouse);
    let mut scratch = CheckScratch::new();

    let mut run = |engine| {
        let cfg = SimConfig {
            ticks: 600,
            window: 48,
            stream: StreamConfig {
                mix: mix.clone(),
                mean_gap: 2,
                seed: 5,
            },
            deviations: DeviationConfig::stalls(80, 2, 6, 11),
            faults: chaos(0xfa17),
            record: true,
            engine,
            ..SimConfig::default()
        };
        let mut cfg = cfg;
        cfg.assign.policy = AssignPolicy::Auction;
        let mut sim = Simulation::from_cycles(&instance, cycles.clone(), cfg).unwrap();
        for tick in 0..600 {
            sim.step().unwrap();
            let c = sim.counters();
            assert!(
                c.conserved(),
                "tick {tick}: {} injected != {} + {} + {} (shed {})",
                c.injected,
                c.completed,
                c.in_flight,
                c.queued,
                c.tasks_shed,
            );
        }
        let report = sim.report();
        let executed = sim.executed_plan().expect("recording enabled");
        let stats = checker
            .check_with_scratch(executed, &mut scratch)
            .unwrap_or_else(|e| panic!("auction chaos run infeasible: {e}"));
        assert_eq!(
            stats.delivered.iter().sum::<u64>(),
            report.counters.delivered
        );
        report
    };

    let event = run(SimEngine::Event);
    let reference = run(SimEngine::Reference);
    assert_eq!(
        event.to_json(),
        reference.to_json(),
        "auction chaos diverged across engines"
    );
    assert!(event.counters.completed > 0, "chaos stopped all deliveries");
    assert!(event.counters.faults_injected > 0, "no fault fired");
    // The fault counters render (and only because faults are on — the
    // report-layer unit tests pin the fault-free rendering unchanged).
    let json = event.to_json();
    assert!(json.contains("\"faults_injected\""));
    assert!(json.contains("\"tasks_shed\""));
    assert!(json.contains("\"agents_lost\""));
}
