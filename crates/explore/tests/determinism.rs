//! The explorer's headline invariant: exploring the same candidate set at
//! 1, 2, and 4 threads yields byte-identical Pareto fronts and
//! per-candidate reports. Property-tested over small random candidate
//! sets (including out-of-range knobs, so failed candidates are covered
//! too), then pinned on the default sweep.

use proptest::prelude::*;
use wsp_explore::{evaluate_batch, sorting_center_sweep, DesignCandidate, ExploreOptions};
use wsp_maps::SortingCenterParams;
use wsp_traffic::RingOrientation;

fn candidate_strategy() -> impl Strategy<Value = DesignCandidate> {
    (
        0u32..3,  // chute_rows picked from {1, 3, 4}: 4 exercises Failed
        2u32..5,  // chute_cols
        1u32..4,  // stations
        0u32..40, // station_offset
        20usize..120,
        0u32..2, // orientation pick
    )
        .prop_map(
            |(rows_pick, chute_cols, stations, station_offset, max_component_len, reversed)| {
                DesignCandidate::new(SortingCenterParams {
                    chute_rows: [1, 3, 4][rows_pick as usize],
                    chute_cols,
                    stations,
                    station_offset,
                    max_component_len,
                    orientation: if reversed == 1 {
                        RingOrientation::Reversed
                    } else {
                        RingOrientation::Forward
                    },
                    ..SortingCenterParams::paper()
                })
            },
        )
}

fn tiny_options(threads: usize) -> ExploreOptions {
    ExploreOptions {
        threads: Some(threads),
        units: 8,
        t_limit: 1_600,
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn thread_count_never_changes_the_results(
        candidates in proptest::collection::vec(candidate_strategy(), 1..4)
    ) {
        let base = evaluate_batch(&candidates, &tiny_options(1));
        for threads in [2usize, 4] {
            let other = evaluate_batch(&candidates, &tiny_options(threads));
            prop_assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "{} threads diverged from 1 thread",
                threads
            );
        }
    }
}

/// A mixed small-map candidate set pinning the invariant on a fixed input
/// (the proptest above covers random inputs): solved, infeasible, and
/// failed candidates together, across both orientations and the capacity
/// boundary. Small maps keep this fast in debug CI; the full 20-candidate
/// sweep runs the same check in release through `benches/explore.rs` and
/// `examples/design_search.rs`.
#[test]
fn fixed_mixed_set_is_thread_count_independent() {
    let small = |stations: u32, max_component_len: usize, reversed: bool| {
        DesignCandidate::new(SortingCenterParams {
            chute_rows: 3,
            chute_cols: 4,
            stations,
            max_component_len,
            orientation: if reversed {
                RingOrientation::Reversed
            } else {
                RingOrientation::Forward
            },
            ..SortingCenterParams::paper()
        })
    };
    let mut candidates = vec![
        small(2, 60, false),
        small(2, 60, true),
        small(4, 100, false),
        small(4, 100, true),
        small(1, 8, false), // chopped far below the capacity bound
    ];
    candidates.push(DesignCandidate::new(SortingCenterParams {
        chute_rows: 2, // even: fails validation
        ..SortingCenterParams::paper()
    }));

    let options = |threads| ExploreOptions {
        threads: Some(threads),
        units: 12,
        t_limit: 1_600,
        ..ExploreOptions::default()
    };
    let one = evaluate_batch(&candidates, &options(1));
    let two = evaluate_batch(&candidates, &options(2));
    let four = evaluate_batch(&candidates, &options(4));
    assert_eq!(one.fingerprint(), two.fingerprint());
    assert_eq!(one.fingerprint(), four.fingerprint());
    assert_eq!(one.threads, 1);
    assert_eq!(two.threads, 2);
    assert_eq!(four.threads, 4);
    assert!(!one.front.is_empty());
    assert!(one.fingerprint().contains("Failed"));
}

#[test]
fn default_sweep_is_fixed() {
    // The sweep itself must stay a pure function (benches and docs quote
    // its size); its full evaluation is exercised in release builds.
    assert_eq!(sorting_center_sweep().len(), 20);
    assert_eq!(
        sorting_center_sweep()
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>(),
        sorting_center_sweep()
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
    );
}
