//! CI smoke test: a small candidate set evaluated on 2 worker threads
//! end to end — candidate build, staged pipeline, Pareto scoring. Fails
//! fast on thread-safety or determinism regressions without the cost of
//! the full sweep.

use wsp_explore::{evaluate_batch, sorting_center_sweep, CandidateOutcome, ExploreOptions};

#[test]
fn small_candidate_set_on_two_threads() {
    let candidates: Vec<_> = sorting_center_sweep().into_iter().take(4).collect();
    let options = ExploreOptions {
        threads: Some(2),
        units: 72,
        ..ExploreOptions::default()
    };
    let outcome = evaluate_batch(&candidates, &options);
    assert_eq!(outcome.threads, 2);
    assert_eq!(outcome.reports.len(), 4);
    for report in &outcome.reports {
        match &report.outcome {
            CandidateOutcome::Solved(eval) => {
                assert!(eval.delivered >= 72, "{}", report.candidate.label());
                assert!(eval.agents > 0);
                assert!(eval.synthesis_cost > 0);
            }
            other => panic!("{}: unexpected {other:?}", report.candidate.label()),
        }
    }
    assert!(!outcome.front.is_empty());
    let best = outcome.best().expect("some candidate solved");
    assert!(best.outcome.eval().is_some());

    // Same batch again on the same thread count: reports must reproduce.
    let again = evaluate_batch(&candidates, &options);
    assert_eq!(outcome.fingerprint(), again.fingerprint());
}
