//! The work-queue parallel batch evaluator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use wsp_core::{PhaseTimings, Pipeline, PipelineError, PipelineOptions, WspInstance};
use wsp_flow::FlowError;

use crate::pareto::{pareto_front, Objective};
use crate::DesignCandidate;

/// Batch-evaluation configuration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker-thread override. `None` falls back to the `WSP_THREADS`
    /// environment variable, then to
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Total workload units per candidate (spread uniformly over the
    /// candidate's products).
    pub units: u64,
    /// Plan-length limit `T` per candidate.
    pub t_limit: usize,
    /// Pipeline configuration forwarded to every evaluation.
    pub pipeline: PipelineOptions,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            threads: None,
            units: 160,
            t_limit: 3_600,
            pipeline: PipelineOptions::default(),
        }
    }
}

/// The deterministic portion of one candidate's evaluation — everything
/// here is byte-identical run to run and thread count to thread count
/// (wall-clock timings live in [`CandidateReport::timings`] instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateEval {
    /// Agents the realized plan employs.
    pub agents: usize,
    /// Timestep of the last needed delivery.
    pub makespan: usize,
    /// Total units delivered.
    pub delivered: u64,
    /// Number of agent cycles in the decomposition.
    pub cycles: usize,
    /// ILP-size proxy for flow-synthesis cost
    /// ([`wsp_flow::AgentFlowSet::synthesis_cost`]).
    pub synthesis_cost: u64,
}

impl CandidateEval {
    /// The candidate's position in objective space.
    pub fn objective(&self) -> Objective {
        Objective {
            agents: self.agents as u64,
            makespan: self.makespan as u64,
            synthesis_cost: self.synthesis_cost,
        }
    }
}

/// How one candidate's evaluation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// Solved and verified.
    Solved(CandidateEval),
    /// The workload is provably infeasible on this design (a legitimate
    /// exploration result, not an error).
    Infeasible(String),
    /// The candidate failed to build or the pipeline failed elsewhere.
    Failed(String),
}

impl CandidateOutcome {
    /// The evaluation, if the candidate solved.
    pub fn eval(&self) -> Option<&CandidateEval> {
        match self {
            CandidateOutcome::Solved(e) => Some(e),
            _ => None,
        }
    }
}

/// One candidate's full result: the deterministic outcome plus wall-clock
/// phase timings (absent when the pipeline never ran to completion).
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// The evaluated candidate.
    pub candidate: DesignCandidate,
    /// The deterministic outcome.
    pub outcome: CandidateOutcome,
    /// Wall-clock per-phase timings of the successful run, if any.
    pub timings: Option<PhaseTimings>,
}

/// The batch result: per-candidate reports in candidate order, the Pareto
/// front, and run metadata.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// One report per input candidate, in input order.
    pub reports: Vec<CandidateReport>,
    /// Indices (into `reports`) of the solved candidates on the Pareto
    /// front over (agents, makespan, synthesis cost), ascending.
    pub front: Vec<usize>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl ExploreOutcome {
    /// A byte-reproducible digest of the deterministic results: candidate
    /// labels, outcomes, and the Pareto front — everything except
    /// wall-clock state. Two runs over the same candidates must produce
    /// identical fingerprints at any thread count; the determinism tests
    /// compare exactly this.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.reports {
            let _ = writeln!(out, "{}: {:?}", r.candidate.label(), r.outcome);
        }
        let _ = writeln!(out, "front: {:?}", self.front);
        out
    }

    /// The report of the best solved candidate: the front member with the
    /// lexicographically smallest (agents, makespan, synthesis cost).
    pub fn best(&self) -> Option<&CandidateReport> {
        self.front
            .iter()
            .map(|&i| &self.reports[i])
            .min_by_key(|r| {
                let o = r.outcome.eval().expect("front members solved").objective();
                (o.agents, o.makespan, o.synthesis_cost)
            })
    }
}

/// Resolves the worker-thread count: explicit override, then the
/// `WSP_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]; always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("WSP_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Evaluates one candidate through the full staged pipeline, reusing the
/// caller's [`Pipeline`] scratch.
pub fn evaluate_candidate(
    pipeline: &mut Pipeline,
    candidate: &DesignCandidate,
    options: &ExploreOptions,
) -> CandidateReport {
    let map = match candidate.build() {
        Ok(map) => map,
        Err(e) => {
            return CandidateReport {
                candidate: candidate.clone(),
                outcome: CandidateOutcome::Failed(e),
                timings: None,
            }
        }
    };
    let workload = map.uniform_workload(options.units);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, options.t_limit);
    match pipeline.run(&instance, &options.pipeline) {
        Ok(report) => {
            let (agents, makespan) = report.objective();
            let eval = CandidateEval {
                agents,
                makespan,
                delivered: report.stats.total_delivered(),
                cycles: report.cycles.cycles().len(),
                synthesis_cost: report.flow.synthesis_cost(),
            };
            CandidateReport {
                candidate: candidate.clone(),
                outcome: CandidateOutcome::Solved(eval),
                timings: Some(report.timings),
            }
        }
        Err(PipelineError::Flow(FlowError::Infeasible { detail })) => CandidateReport {
            candidate: candidate.clone(),
            outcome: CandidateOutcome::Infeasible(detail),
            timings: None,
        },
        Err(e) => CandidateReport {
            candidate: candidate.clone(),
            outcome: CandidateOutcome::Failed(e.to_string()),
            timings: None,
        },
    }
}

/// Evaluates a batch of candidates on a work-queue of scoped worker
/// threads and scores the Pareto front.
///
/// Each worker owns one [`Pipeline`] (realization/verification scratch is
/// reused across the candidates it pulls) and claims work off a shared
/// atomic counter, so an expensive candidate never stalls the rest of the
/// batch behind it. Results land in their candidate's slot, keeping the
/// output a pure function of the input regardless of completion order or
/// thread count.
pub fn evaluate_batch(candidates: &[DesignCandidate], options: &ExploreOptions) -> ExploreOutcome {
    let t0 = Instant::now();
    let n = candidates.len();
    let threads = resolve_threads(options.threads).min(n.max(1));

    let mut slots: Vec<Option<CandidateReport>> = Vec::new();
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            workers.push(scope.spawn(move || {
                let mut pipeline = Pipeline::new();
                let mut produced: Vec<(usize, CandidateReport)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    produced.push((
                        i,
                        evaluate_candidate(&mut pipeline, &candidates[i], options),
                    ));
                }
                produced
            }));
        }
        for worker in workers {
            for (i, report) in worker.join().expect("explore worker panicked") {
                slots[i] = Some(report);
            }
        }
    });

    let reports: Vec<CandidateReport> = slots
        .into_iter()
        .map(|s| s.expect("every candidate evaluated"))
        .collect();

    // Pareto front over the solved candidates, mapped back to report
    // indices (in ascending order, as `pareto_front` preserves it).
    let solved: Vec<(usize, Objective)> = reports
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.outcome.eval().map(|e| (i, e.objective())))
        .collect();
    let objectives: Vec<Objective> = solved.iter().map(|&(_, o)| o).collect();
    let front: Vec<usize> = pareto_front(&objectives)
        .into_iter()
        .map(|k| solved[k].0)
        .collect();

    ExploreOutcome {
        reports,
        front,
        threads,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_maps::SortingCenterParams;

    fn tiny_candidates() -> Vec<DesignCandidate> {
        [2u32, 4]
            .into_iter()
            .map(|stations| {
                DesignCandidate::new(SortingCenterParams {
                    chute_rows: 3,
                    chute_cols: 4,
                    stations,
                    ..SortingCenterParams::paper()
                })
            })
            .collect()
    }

    fn tiny_options(threads: usize) -> ExploreOptions {
        ExploreOptions {
            threads: Some(threads),
            units: 24,
            t_limit: 1_200,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn batch_solves_and_scores_a_front() {
        let outcome = evaluate_batch(&tiny_candidates(), &tiny_options(2));
        assert_eq!(outcome.reports.len(), 2);
        assert!(!outcome.front.is_empty());
        for &i in &outcome.front {
            let eval = outcome.reports[i].outcome.eval().expect("front solved");
            assert!(eval.delivered >= 24);
            assert!(eval.synthesis_cost > 0);
            assert!(outcome.reports[i].timings.is_some());
        }
        let best = outcome.best().expect("has a best");
        assert!(best.outcome.eval().is_some());
    }

    #[test]
    fn failed_candidates_keep_their_slot() {
        let mut candidates = tiny_candidates();
        candidates.insert(
            1,
            DesignCandidate::new(SortingCenterParams {
                chute_rows: 2, // even: rejected by validate()
                ..SortingCenterParams::paper()
            }),
        );
        let outcome = evaluate_batch(&candidates, &tiny_options(2));
        assert_eq!(outcome.reports.len(), 3);
        assert!(matches!(
            outcome.reports[1].outcome,
            CandidateOutcome::Failed(_)
        ));
        assert!(!outcome.front.contains(&1));
    }

    #[test]
    fn impossible_workloads_report_infeasible() {
        let candidates = tiny_candidates();
        let options = ExploreOptions {
            units: 50_000_000, // far beyond any station's per-period rate
            ..tiny_options(1)
        };
        let outcome = evaluate_batch(&candidates, &options);
        for r in &outcome.reports {
            assert!(matches!(r.outcome, CandidateOutcome::Infeasible(_)));
        }
        assert!(outcome.front.is_empty());
        assert!(outcome.best().is_none());
    }

    #[test]
    fn thread_resolution_prefers_explicit_then_env() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let outcome = evaluate_batch(&[], &tiny_options(4));
        assert!(outcome.reports.is_empty());
        assert!(outcome.front.is_empty());
        assert!(outcome.fingerprint().contains("front: []"));
    }
}
