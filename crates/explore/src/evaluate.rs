//! The work-queue parallel batch evaluator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use wsp_core::{PhaseTimings, Pipeline, PipelineError, PipelineOptions, RunControl, WspInstance};
use wsp_flow::FlowError;

use crate::pareto::{pareto_front, Objective};
use crate::DesignCandidate;

/// Batch-evaluation configuration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker-thread override. `None` falls back to the `WSP_THREADS`
    /// environment variable, then to
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Total workload units per candidate (spread uniformly over the
    /// candidate's products).
    pub units: u64,
    /// Plan-length limit `T` per candidate.
    pub t_limit: usize,
    /// Pipeline configuration forwarded to every evaluation.
    pub pipeline: PipelineOptions,
    /// Lifelong scoring: when set, every solved candidate is additionally
    /// run through a deterministic `wsp-sim` simulation and its mean task
    /// latency becomes the fourth Pareto axis
    /// ([`Objective::sim_latency`](crate::Objective)).
    pub sim: Option<SimScoring>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            threads: None,
            units: 160,
            t_limit: 3_600,
            pipeline: PipelineOptions::default(),
            sim: None,
        }
    }
}

/// Configuration of the lifelong scoring stage: a seeded zipf task stream
/// simulated for a fixed tick budget on the candidate's own design. All
/// knobs are deterministic, so the added axis keeps the batch evaluator's
/// byte-reproducibility guarantee.
#[derive(Debug, Clone)]
pub struct SimScoring {
    /// Simulated ticks per candidate.
    pub ticks: u64,
    /// Rolling-horizon window (`0`: the simulator's auto default).
    pub window: usize,
    /// Total units in the zipf arrival mix.
    pub units: u64,
    /// Zipf exponent of the mix (see `MapInstance::zipf_workload`).
    pub zipf_exponent: f64,
    /// Mean ticks between arrivals.
    pub mean_gap: u32,
    /// Seed for both the mix permutation and the arrival gaps.
    pub seed: u64,
    /// Task-assignment policy the scored simulation runs under — a
    /// co-design knob: the same floorplan scores differently when agents
    /// follow their synthesized cycles ([`wsp_sim::AssignPolicy::Static`])
    /// versus bidding on queued tasks
    /// ([`wsp_sim::AssignPolicy::Auction`]). Deterministic either way.
    pub policy: wsp_sim::AssignPolicy,
}

impl Default for SimScoring {
    fn default() -> Self {
        SimScoring {
            ticks: 600,
            window: 0,
            units: 400,
            zipf_exponent: 1.0,
            mean_gap: 2,
            seed: 7,
            policy: wsp_sim::AssignPolicy::Static,
        }
    }
}

/// The lifelong-simulation portion of a solved candidate's evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimScore {
    /// Mean task latency in milliticks (the scored axis).
    pub mean_latency_milliticks: u64,
    /// Completed tasks per kilotick.
    pub throughput_per_kilotick: u64,
    /// Tasks completed within the simulated budget.
    pub completed: u64,
}

/// The deterministic portion of one candidate's evaluation — everything
/// here is byte-identical run to run and thread count to thread count
/// (wall-clock timings live in [`CandidateReport::timings`] instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateEval {
    /// Agents the realized plan employs.
    pub agents: usize,
    /// Timestep of the last needed delivery.
    pub makespan: usize,
    /// Total units delivered.
    pub delivered: u64,
    /// Number of agent cycles in the decomposition.
    pub cycles: usize,
    /// ILP-size proxy for flow-synthesis cost
    /// ([`wsp_flow::AgentFlowSet::synthesis_cost`]).
    pub synthesis_cost: u64,
    /// Lifelong simulation score, when [`ExploreOptions::sim`] is set.
    pub sim: Option<SimScore>,
}

impl CandidateEval {
    /// The candidate's position in objective space. The latency axis is
    /// `0` when lifelong scoring is off (leaving three-axis fronts
    /// unchanged) and `u64::MAX` for a scored design that completed no
    /// tasks within the tick budget — a mean of zero completions is not a
    /// latency of zero, and must never dominate designs that deliver.
    pub fn objective(&self) -> Objective {
        Objective {
            agents: self.agents as u64,
            makespan: self.makespan as u64,
            synthesis_cost: self.synthesis_cost,
            sim_latency: self.sim.as_ref().map_or(0, |s| {
                if s.completed == 0 {
                    u64::MAX
                } else {
                    s.mean_latency_milliticks
                }
            }),
        }
    }
}

/// How one candidate's evaluation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// Solved and verified.
    Solved(CandidateEval),
    /// The workload is provably infeasible on this design (a legitimate
    /// exploration result, not an error).
    Infeasible(String),
    /// The candidate failed to build or the pipeline failed elsewhere.
    Failed(String),
}

impl CandidateOutcome {
    /// The evaluation, if the candidate solved.
    pub fn eval(&self) -> Option<&CandidateEval> {
        match self {
            CandidateOutcome::Solved(e) => Some(e),
            _ => None,
        }
    }
}

/// One candidate's full result: the deterministic outcome plus wall-clock
/// phase timings (absent when the pipeline never ran to completion).
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// The evaluated candidate.
    pub candidate: DesignCandidate,
    /// The deterministic outcome.
    pub outcome: CandidateOutcome,
    /// Wall-clock per-phase timings of the successful run, if any.
    pub timings: Option<PhaseTimings>,
}

/// The batch result: per-candidate reports in candidate order, the Pareto
/// front, and run metadata.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// One report per input candidate, in input order.
    pub reports: Vec<CandidateReport>,
    /// Indices (into `reports`) of the solved candidates on the Pareto
    /// front over (agents, makespan, synthesis cost), ascending.
    pub front: Vec<usize>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl ExploreOutcome {
    /// A byte-reproducible digest of the deterministic results: candidate
    /// labels, outcomes, and the Pareto front — everything except
    /// wall-clock state. Two runs over the same candidates must produce
    /// identical fingerprints at any thread count; the determinism tests
    /// compare exactly this.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.reports {
            let _ = writeln!(out, "{}: {:?}", r.candidate.label(), r.outcome);
        }
        let _ = writeln!(out, "front: {:?}", self.front);
        out
    }

    /// The report of the best solved candidate: the front member with the
    /// lexicographically smallest (agents, makespan, synthesis cost).
    pub fn best(&self) -> Option<&CandidateReport> {
        self.front
            .iter()
            .map(|&i| &self.reports[i])
            .min_by_key(|r| {
                let o = r.outcome.eval().expect("front members solved").objective();
                (o.agents, o.makespan, o.synthesis_cost)
            })
    }

    /// The canonical JSON rendering of the deterministic results: the
    /// Pareto front plus one object per candidate (label, outcome, and —
    /// for solved candidates — the full [`CandidateEval`]), keys in fixed
    /// order. Wall-clock state (`threads`, `wall`, per-phase timings) is
    /// deliberately excluded, so the rendering is **byte-identical** for
    /// the same candidate list at every thread count — `wsp-server`
    /// returns exactly this string for explore jobs, which makes a server
    /// round-trip byte-comparable to a direct [`evaluate_batch`] call.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + 160 * self.reports.len());
        out.push_str("{\n  \"front\": [");
        for (k, i) in self.front.iter().enumerate() {
            let _ = write!(out, "{}{}", if k > 0 { ", " } else { "" }, i);
        }
        out.push_str("],\n  \"candidates\": [\n");
        for (k, r) in self.reports.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"label\": \"{}\", ",
                json_escape(&r.candidate.label())
            );
            match &r.outcome {
                CandidateOutcome::Solved(e) => {
                    let _ = write!(
                        out,
                        "\"outcome\": \"solved\", \"agents\": {}, \"makespan\": {}, \
                         \"delivered\": {}, \"cycles\": {}, \"synthesis_cost\": {}",
                        e.agents, e.makespan, e.delivered, e.cycles, e.synthesis_cost
                    );
                    if let Some(s) = &e.sim {
                        let _ = write!(
                            out,
                            ", \"sim\": {{\"mean_latency_milliticks\": {}, \
                             \"throughput_per_kilotick\": {}, \"completed\": {}}}",
                            s.mean_latency_milliticks, s.throughput_per_kilotick, s.completed
                        );
                    }
                }
                CandidateOutcome::Infeasible(detail) => {
                    let _ = write!(
                        out,
                        "\"outcome\": \"infeasible\", \"detail\": \"{}\"",
                        json_escape(detail)
                    );
                }
                CandidateOutcome::Failed(detail) => {
                    let _ = write!(
                        out,
                        "\"outcome\": \"failed\", \"detail\": \"{}\"",
                        json_escape(detail)
                    );
                }
            }
            out.push('}');
            if k + 1 < self.reports.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping for the canonical rendering (labels and
/// solver error details are ASCII in practice, but control characters and
/// quotes must never corrupt the document).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Resolves the worker-thread count: explicit override, then the
/// `WSP_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]; always at least 1.
///
/// Thin re-export of [`wsp_core::resolve_threads`], which every parallel
/// driver in the workspace shares.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    wsp_core::resolve_threads(explicit)
}

/// Evaluates one candidate through the full staged pipeline, reusing the
/// caller's [`Pipeline`] scratch.
pub fn evaluate_candidate(
    pipeline: &mut Pipeline,
    candidate: &DesignCandidate,
    options: &ExploreOptions,
) -> CandidateReport {
    let map = match candidate.build() {
        Ok(map) => map,
        Err(e) => {
            return CandidateReport {
                candidate: candidate.clone(),
                outcome: CandidateOutcome::Failed(e),
                timings: None,
            }
        }
    };
    let workload = map.uniform_workload(options.units);
    // Draw the lifelong arrival mix before the map moves into the
    // instance (the mix is a pure function of the candidate + scoring
    // seed, so determinism is preserved).
    let sim_mix = options
        .sim
        .as_ref()
        .map(|s| map.zipf_workload(s.units, s.zipf_exponent, s.seed));
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, options.t_limit);
    match pipeline.run(&instance, &options.pipeline) {
        Ok(report) => {
            let sim = match options.sim.as_ref() {
                None => None,
                Some(scoring) => {
                    match simulate_candidate(
                        &instance,
                        report.cycles.clone(),
                        scoring,
                        sim_mix.expect("mix drawn when scoring is on"),
                    ) {
                        Ok(score) => Some(score),
                        Err(e) => {
                            return CandidateReport {
                                candidate: candidate.clone(),
                                outcome: CandidateOutcome::Failed(format!(
                                    "lifelong scoring failed: {e}"
                                )),
                                timings: Some(report.timings),
                            }
                        }
                    }
                }
            };
            let (agents, makespan) = report.objective();
            let eval = CandidateEval {
                agents,
                makespan,
                delivered: report.stats.total_delivered(),
                cycles: report.cycles.cycles().len(),
                synthesis_cost: report.flow.synthesis_cost(),
                sim,
            };
            CandidateReport {
                candidate: candidate.clone(),
                outcome: CandidateOutcome::Solved(eval),
                timings: Some(report.timings),
            }
        }
        Err(PipelineError::Flow(FlowError::Infeasible { detail })) => CandidateReport {
            candidate: candidate.clone(),
            outcome: CandidateOutcome::Infeasible(detail),
            timings: None,
        },
        Err(e) => CandidateReport {
            candidate: candidate.clone(),
            outcome: CandidateOutcome::Failed(e.to_string()),
            timings: None,
        },
    }
}

/// Runs the deterministic lifelong simulation behind [`SimScoring`] on a
/// solved candidate's own cycle set (no re-synthesis).
fn simulate_candidate(
    instance: &WspInstance,
    cycles: wsp_flow::AgentCycleSet,
    scoring: &SimScoring,
    mix: wsp_model::Workload,
) -> Result<SimScore, wsp_sim::SimError> {
    let config = wsp_sim::SimConfig {
        ticks: scoring.ticks,
        window: scoring.window,
        stream: wsp_sim::StreamConfig {
            mix,
            mean_gap: scoring.mean_gap,
            seed: scoring.seed,
        },
        assign: wsp_sim::AssignConfig {
            policy: scoring.policy,
            ..wsp_sim::AssignConfig::default()
        },
        ..wsp_sim::SimConfig::default()
    };
    let mut sim = wsp_sim::Simulation::from_cycles(instance, cycles, config)?;
    let report = sim.run()?;
    Ok(SimScore {
        mean_latency_milliticks: report.mean_latency_milliticks(),
        throughput_per_kilotick: report.throughput_per_kilotick(),
        completed: report.counters.completed,
    })
}

/// Evaluates a batch of candidates on a work-queue of scoped worker
/// threads and scores the Pareto front.
///
/// Each worker owns one [`Pipeline`] (realization/verification scratch
/// plus the ILP solver scratch — basis factors and pricing workspace —
/// are reused across the candidates it pulls, and candidates sharing a
/// constraint skeleton warm-start the simplex) and claims work off a
/// shared atomic counter, so an expensive candidate never stalls the rest
/// of the batch behind it. Results land in their candidate's slot,
/// keeping the output a pure function of the input regardless of
/// completion order or thread count: solver warm starts are fingerprint
/// gated to identical problems, so scratch reuse never changes a
/// candidate's result.
pub fn evaluate_batch(candidates: &[DesignCandidate], options: &ExploreOptions) -> ExploreOutcome {
    evaluate_batch_with(candidates, options, &RunControl::new())
}

/// [`evaluate_batch`] with a supervision channel: `control` is checked
/// before each candidate claim (a cancelled batch stops promptly — no new
/// evaluations start, in-flight ones finish their candidate) and its
/// progress counter advances by one per evaluated candidate, so an
/// external observer (e.g. a `wsp-server` job poll) sees monotone
/// progress toward `candidates.len()`.
///
/// Without cancellation the result is identical to [`evaluate_batch`] —
/// byte-identical at every thread count. When cancelled, candidates whose
/// evaluation never started report
/// [`CandidateOutcome::Failed`]`("cancelled before evaluation")` and the
/// front is scored over whatever did complete (the caller typically
/// discards the partial outcome).
pub fn evaluate_batch_with(
    candidates: &[DesignCandidate],
    options: &ExploreOptions,
    control: &RunControl,
) -> ExploreOutcome {
    let t0 = Instant::now();
    let n = candidates.len();
    let threads = resolve_threads(options.threads).min(n.max(1));

    let mut slots: Vec<Option<CandidateReport>> = Vec::new();
    slots.resize_with(n, || None);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            workers.push(scope.spawn(move || {
                let mut pipeline = Pipeline::new();
                let mut produced: Vec<(usize, CandidateReport)> = Vec::new();
                loop {
                    if control.is_cancelled() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    produced.push((
                        i,
                        evaluate_candidate(&mut pipeline, &candidates[i], options),
                    ));
                    control.add_progress(1);
                }
                produced
            }));
        }
        for worker in workers {
            for (i, report) in worker.join().expect("explore worker panicked") {
                slots[i] = Some(report);
            }
        }
    });

    let reports: Vec<CandidateReport> = slots
        .into_iter()
        .zip(candidates)
        .map(|(s, c)| {
            s.unwrap_or_else(|| CandidateReport {
                candidate: c.clone(),
                outcome: CandidateOutcome::Failed("cancelled before evaluation".to_string()),
                timings: None,
            })
        })
        .collect();

    // Pareto front over the solved candidates, mapped back to report
    // indices (in ascending order, as `pareto_front` preserves it).
    let solved: Vec<(usize, Objective)> = reports
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.outcome.eval().map(|e| (i, e.objective())))
        .collect();
    let objectives: Vec<Objective> = solved.iter().map(|&(_, o)| o).collect();
    let front: Vec<usize> = pareto_front(&objectives)
        .into_iter()
        .map(|k| solved[k].0)
        .collect();

    ExploreOutcome {
        reports,
        front,
        threads,
        wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_maps::SortingCenterParams;

    fn tiny_candidates() -> Vec<DesignCandidate> {
        [2u32, 4]
            .into_iter()
            .map(|stations| {
                DesignCandidate::new(SortingCenterParams {
                    chute_rows: 3,
                    chute_cols: 4,
                    stations,
                    ..SortingCenterParams::paper()
                })
            })
            .collect()
    }

    fn tiny_options(threads: usize) -> ExploreOptions {
        ExploreOptions {
            threads: Some(threads),
            units: 24,
            t_limit: 1_200,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn batch_solves_and_scores_a_front() {
        let outcome = evaluate_batch(&tiny_candidates(), &tiny_options(2));
        assert_eq!(outcome.reports.len(), 2);
        assert!(!outcome.front.is_empty());
        for &i in &outcome.front {
            let eval = outcome.reports[i].outcome.eval().expect("front solved");
            assert!(eval.delivered >= 24);
            assert!(eval.synthesis_cost > 0);
            assert!(outcome.reports[i].timings.is_some());
        }
        let best = outcome.best().expect("has a best");
        assert!(best.outcome.eval().is_some());
    }

    #[test]
    fn failed_candidates_keep_their_slot() {
        let mut candidates = tiny_candidates();
        candidates.insert(
            1,
            DesignCandidate::new(SortingCenterParams {
                chute_rows: 2, // even: rejected by validate()
                ..SortingCenterParams::paper()
            }),
        );
        let outcome = evaluate_batch(&candidates, &tiny_options(2));
        assert_eq!(outcome.reports.len(), 3);
        assert!(matches!(
            outcome.reports[1].outcome,
            CandidateOutcome::Failed(_)
        ));
        assert!(!outcome.front.contains(&1));
    }

    #[test]
    fn impossible_workloads_report_infeasible() {
        let candidates = tiny_candidates();
        let options = ExploreOptions {
            units: 50_000_000, // far beyond any station's per-period rate
            ..tiny_options(1)
        };
        let outcome = evaluate_batch(&candidates, &options);
        for r in &outcome.reports {
            assert!(matches!(r.outcome, CandidateOutcome::Infeasible(_)));
        }
        assert!(outcome.front.is_empty());
        assert!(outcome.best().is_none());
    }

    #[test]
    fn lifelong_scoring_adds_a_deterministic_latency_axis() {
        let candidates = tiny_candidates();
        let scored = |threads: usize| ExploreOptions {
            sim: Some(SimScoring {
                ticks: 200,
                units: 60,
                ..SimScoring::default()
            }),
            ..tiny_options(threads)
        };
        let one = evaluate_batch(&candidates, &scored(1));
        let two = evaluate_batch(&candidates, &scored(2));
        assert_eq!(one.fingerprint(), two.fingerprint());
        for r in &one.reports {
            let eval = r.outcome.eval().expect("tiny candidates solve");
            let sim = eval.sim.as_ref().expect("lifelong scoring on");
            assert!(
                sim.completed > 0,
                "{}: no tasks completed",
                r.candidate.label()
            );
            assert!(sim.mean_latency_milliticks > 0);
            assert_eq!(eval.objective().sim_latency, sim.mean_latency_milliticks);
        }
        // A scored design that completes nothing must sit at the worst end
        // of the latency axis, not the best.
        let mut starved = one.reports[0].outcome.eval().unwrap().clone();
        starved.sim = Some(SimScore {
            mean_latency_milliticks: 0,
            throughput_per_kilotick: 0,
            completed: 0,
        });
        assert_eq!(starved.objective().sim_latency, u64::MAX);
        // Without scoring the axis is zero.
        let plain = evaluate_batch(&candidates, &tiny_options(1));
        for r in &plain.reports {
            assert_eq!(r.outcome.eval().unwrap().objective().sim_latency, 0);
        }
    }

    #[test]
    fn assignment_policy_is_a_deterministic_codesign_knob() {
        // Scoring the same candidates under the auction policy must stay
        // byte-reproducible across thread counts, and the knob must
        // actually reach the simulator (auction runs complete work too).
        let candidates = tiny_candidates();
        let scored = |threads: usize| ExploreOptions {
            sim: Some(SimScoring {
                ticks: 200,
                units: 60,
                policy: wsp_sim::AssignPolicy::Auction,
                ..SimScoring::default()
            }),
            ..tiny_options(threads)
        };
        let one = evaluate_batch(&candidates, &scored(1));
        let two = evaluate_batch(&candidates, &scored(2));
        assert_eq!(one.fingerprint(), two.fingerprint());
        for r in &one.reports {
            let eval = r.outcome.eval().expect("tiny candidates solve");
            let sim = eval.sim.as_ref().expect("lifelong scoring on");
            assert!(
                sim.completed > 0,
                "{}: auction scoring completed nothing",
                r.candidate.label()
            );
        }
    }

    #[test]
    fn thread_resolution_prefers_explicit_then_env() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn canonical_json_is_thread_count_independent() {
        let mut candidates = tiny_candidates();
        // Include a failed candidate so every outcome arm renders.
        candidates.push(DesignCandidate::new(SortingCenterParams {
            chute_rows: 2, // even: rejected by validate()
            ..SortingCenterParams::paper()
        }));
        let one = evaluate_batch(&candidates, &tiny_options(1));
        let two = evaluate_batch(&candidates, &tiny_options(2));
        assert_eq!(one.to_json(), two.to_json());
        let json = one.to_json();
        assert!(json.starts_with("{\n  \"front\": ["));
        assert!(json.contains("\"outcome\": \"solved\""));
        assert!(json.contains("\"outcome\": \"failed\""));
        assert!(json.contains("\"synthesis_cost\": "));
        // Wall-clock state must never leak into the canonical rendering.
        assert!(!json.contains("wall"));
        assert!(!json.contains("threads"));
    }

    #[test]
    fn cancelled_batches_stop_promptly_and_mark_unevaluated_slots() {
        let candidates = tiny_candidates();
        // Cancel before the batch starts: no candidate may be evaluated.
        let control = RunControl::new();
        control.cancel();
        let outcome = evaluate_batch_with(&candidates, &tiny_options(2), &control);
        assert_eq!(outcome.reports.len(), candidates.len());
        for r in &outcome.reports {
            assert!(
                matches!(&r.outcome, CandidateOutcome::Failed(e) if e.contains("cancelled")),
                "expected a cancelled marker, got {:?}",
                r.outcome
            );
        }
        assert_eq!(control.progress(), 0);
        assert!(outcome.front.is_empty());

        // An uncancelled control reproduces evaluate_batch exactly and
        // reports full progress.
        let control = RunControl::new();
        let with = evaluate_batch_with(&candidates, &tiny_options(2), &control);
        let without = evaluate_batch(&candidates, &tiny_options(1));
        assert_eq!(with.fingerprint(), without.fingerprint());
        assert_eq!(with.to_json(), without.to_json());
        assert_eq!(control.progress(), candidates.len() as u64);
    }

    #[test]
    fn empty_batch_is_fine() {
        let outcome = evaluate_batch(&[], &tiny_options(4));
        assert!(outcome.reports.is_empty());
        assert!(outcome.front.is_empty());
        assert!(outcome.fingerprint().contains("front: []"));
    }
}
