//! Design-space exploration over warehouse traffic-system candidates —
//! the paper's outer co-design loop as a production subsystem.
//!
//! The paper evaluates one hand-picked traffic system per map; the real
//! contribution of co-design is *searching* that space. This crate closes
//! the loop:
//!
//! 1. [`DesignCandidate`] / [`sorting_center_sweep`] — parameterized
//!    candidates over the [`wsp_maps::SortingCenterParams`] family (aisle
//!    pitch, ring orientation, station placement, lane-chop granularity).
//! 2. [`evaluate_batch`] — a work-queue parallel batch evaluator built on
//!    `std::thread::scope`: one reusable [`wsp_core::Pipeline`] per worker
//!    thread, candidates pulled off a shared atomic counter. Thread count
//!    comes from an explicit override, the `WSP_THREADS` environment
//!    variable, or [`std::thread::available_parallelism`], in that order.
//! 3. [`pareto_front`] — a Pareto scorer over
//!    ([`agents`](CandidateEval::agents), [`makespan`](CandidateEval::makespan),
//!    [`synthesis_cost`](CandidateEval::synthesis_cost)).
//!
//! **Determinism invariant:** results are byte-identical at every thread
//! count. Candidate construction is deterministic in its parameters, each
//! evaluation runs single-threaded inside one worker, results land in a
//! slot indexed by candidate position (never by completion order), and the
//! third Pareto axis is the deterministic ILP-size proxy for synthesis
//! cost rather than wall-clock time (which is still reported, but never
//! scored). `tests/determinism.rs` holds the crate to this at 1, 2, and 4
//! threads.
//!
//! # Examples
//!
//! ```
//! use wsp_explore::{evaluate_batch, sorting_center_sweep, ExploreOptions};
//!
//! let candidates: Vec<_> = sorting_center_sweep().into_iter().take(2).collect();
//! let options = ExploreOptions {
//!     units: 40,
//!     threads: Some(2),
//!     ..ExploreOptions::default()
//! };
//! let outcome = evaluate_batch(&candidates, &options);
//! assert_eq!(outcome.reports.len(), 2);
//! assert!(!outcome.front.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod candidate;
mod evaluate;
mod pareto;

pub use candidate::{sorting_center_sweep, DesignCandidate};
pub use evaluate::{
    evaluate_batch, evaluate_batch_with, evaluate_candidate, resolve_threads, CandidateEval,
    CandidateOutcome, CandidateReport, ExploreOptions, ExploreOutcome, SimScore, SimScoring,
};
pub use pareto::{pareto_front, Objective};
