//! The Pareto scorer over candidate objectives.

/// The minimized axes of a candidate design, all deterministic: team
/// size, effective makespan, the ILP-size proxy for flow-synthesis cost
/// (see [`wsp_flow::AgentFlowSet::synthesis_cost`]), and — when lifelong
/// scoring is enabled — the simulated mean task latency. Wall-clock
/// times are reported alongside but never scored, so fronts are
/// byte-reproducible across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Objective {
    /// Agents the realized plan employs (smaller is better).
    pub agents: u64,
    /// Timestep of the last needed delivery (smaller is better).
    pub makespan: u64,
    /// `variables + constraints` of the synthesis ILP (smaller is better).
    pub synthesis_cost: u64,
    /// Mean simulated task latency in milliticks
    /// ([`wsp_sim::SimReport::mean_latency_milliticks`]); `0` when
    /// lifelong scoring is off, which leaves three-axis fronts unchanged.
    pub sim_latency: u64,
}

impl Objective {
    /// Whether `self` Pareto-dominates `other`: no worse on every axis and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &Objective) -> bool {
        let no_worse = self.agents <= other.agents
            && self.makespan <= other.makespan
            && self.synthesis_cost <= other.synthesis_cost
            && self.sim_latency <= other.sim_latency;
        no_worse && self != other
    }
}

/// Indices of the non-dominated objectives, in ascending input order.
/// Ties (identical objective vectors) all stay on the front, so the result
/// is a pure function of the input — independent of evaluation order.
pub fn pareto_front(objectives: &[Objective]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .any(|other| other.dominates(&objectives[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(agents: u64, makespan: u64, cost: u64) -> Objective {
        Objective {
            agents,
            makespan,
            synthesis_cost: cost,
            sim_latency: 0,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(o(1, 10, 5).dominates(&o(2, 10, 5)));
        assert!(o(1, 9, 5).dominates(&o(1, 10, 5)));
        assert!(!o(1, 10, 5).dominates(&o(1, 10, 5))); // equal: no dominance
        assert!(!o(1, 11, 5).dominates(&o(2, 10, 5))); // trade-off
    }

    #[test]
    fn front_keeps_trade_offs_and_ties() {
        let objs = [
            o(2, 100, 50), // dominated by [3]
            o(1, 200, 50), // front: fewest agents
            o(3, 50, 50),  // front: fastest
            o(2, 99, 50),  // front: dominates [0]
            o(2, 99, 50),  // tie with [3]: also on the front
        ];
        assert_eq!(pareto_front(&objs), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_fronts() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[o(5, 5, 5)]), vec![0]);
    }

    #[test]
    fn latency_axis_breaks_three_axis_dominance() {
        let slow = Objective {
            sim_latency: 900,
            ..o(2, 100, 50)
        };
        let fast = Objective {
            sim_latency: 200,
            ..o(2, 101, 50)
        };
        // On (agents, makespan, cost) alone `slow` would dominate `fast`;
        // the latency axis keeps both on the front.
        assert!(!slow.dominates(&fast));
        assert!(!fast.dominates(&slow));
        assert_eq!(pareto_front(&[slow, fast]), vec![0, 1]);
    }
}
