//! Candidate designs: deterministic wrappers over the parameterized map
//! builders in `wsp_maps`.

use wsp_maps::{sorting_center_variant, MapInstance, SortingCenterParams};
use wsp_traffic::RingOrientation;

/// One point of the design space: a full set of topology knobs that builds
/// into a concrete warehouse + traffic system.
///
/// Construction is deterministic — the same candidate always builds the
/// byte-identical instance — which is the foundation of the explorer's
/// thread-count-independence guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignCandidate {
    /// The topology knobs.
    pub params: SortingCenterParams,
}

impl DesignCandidate {
    /// Wraps a parameter set.
    pub fn new(params: SortingCenterParams) -> Self {
        DesignCandidate { params }
    }

    /// A short deterministic label for reports and benchmark output.
    pub fn label(&self) -> String {
        self.params.label()
    }

    /// Builds the candidate's warehouse and validated traffic system.
    ///
    /// # Errors
    ///
    /// Returns the builder's error as a string (out-of-range knobs, or a
    /// map-construction bug).
    pub fn build(&self) -> Result<MapInstance, String> {
        sorting_center_variant(&self.params).map_err(|e| e.to_string())
    }
}

/// The default sorting-center sweep: 20 candidates spanning aisle pitch,
/// ring orientation, station count, lane-chop granularity, and (for the
/// paper geometry) station placement — the knobs the paper's §IV-A leaves
/// to the designer.
///
/// The lane-chop axis straddles the Property 4.1 capacity boundary on
/// purpose: 90 reproduces the paper's three-component ring (entry
/// capacities 41/41/37 against the 36 per-period loaded crossings a
/// 36-product workload forces), 200 merges the whole aisle ladder into
/// one long component (double the cycle time, double the capacity
/// headroom, a smaller ILP) — so the explorer sees real feasible
/// trade-offs rather than one dominant design, and designs chopped below
/// the boundary correctly come back [`Infeasible`].
///
/// The sweep is a fixed, deterministic list: benchmarks and the
/// determinism tests rely on it never depending on ambient state.
///
/// [`Infeasible`]: crate::CandidateOutcome::Infeasible
pub fn sorting_center_sweep() -> Vec<DesignCandidate> {
    let mut out = Vec::new();
    for aisle_pitch in [2u32, 3] {
        for orientation in [RingOrientation::Forward, RingOrientation::Reversed] {
            for stations in [2u32, 4] {
                for max_component_len in [90usize, 200] {
                    out.push(DesignCandidate::new(SortingCenterParams {
                        aisle_pitch,
                        orientation,
                        stations,
                        max_component_len,
                        ..SortingCenterParams::paper()
                    }));
                }
            }
        }
    }
    // Station-placement rotations of the paper geometry.
    for station_offset in [9u32, 18, 27, 36] {
        out.push(DesignCandidate::new(SortingCenterParams {
            station_offset,
            ..SortingCenterParams::paper()
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_twenty_distinct_buildable_candidates() {
        let sweep = sorting_center_sweep();
        assert_eq!(sweep.len(), 20);
        let labels: std::collections::BTreeSet<String> = sweep.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 20, "duplicate candidate labels");
        for c in &sweep {
            let map = c.build().expect("sweep candidate builds");
            assert!(map.traffic.is_strongly_connected(), "{}", c.label());
        }
    }

    #[test]
    fn build_is_deterministic() {
        let c = &sorting_center_sweep()[7];
        let a = c.build().unwrap();
        let b = c.build().unwrap();
        assert_eq!(a.warehouse.grid().to_ascii(), b.warehouse.grid().to_ascii());
        assert_eq!(a.traffic.component_count(), b.traffic.component_count());
    }
}
