//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! strategies for integer ranges, tuples, [`Just`], and
//! [`collection::vec`], plus the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: generation is plain seeded random
//! sampling (one deterministic seed per test function) and failing cases
//! are reported but NOT shrunk.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Deterministic per-test random source.
#[derive(Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test name, so each test has a stable
    /// but distinct stream.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform sample from `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        let x = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + x as i128
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the case; generate another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-test-function configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// An inclusive length range for [`vec()`](vec()).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`](vec()).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.int_in(self.len.lo as i128, self.len.hi as i128) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests: each `#[test] fn name(x in strategy, ..)` body
/// runs for `cases` freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(20).max(1000),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {ran} failed: {msg}\n{}", stringify!($(($arg))*));
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {lhs:?}, right: {rhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {lhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Discards the current case (does not count toward `cases`) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in -5i128..=5, b in 1usize..4) {
            prop_assert!((-5..=5).contains(&a));
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1u32..4).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, (n as usize)..=(n as usize))
        })) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_header_parses(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
