//! Offline stand-in for the `tiny_http` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the minimal HTTP/1.1 **server** subset `wsp-server` uses: a
//! blocking [`Server`] that accepts connections ([`Server::recv`] is
//! callable concurrently from many threads — `TcpListener::accept` takes
//! `&self`), a strict bounded [request parser](parse_request) exposed as
//! a pure function over any [`BufRead`] (so adversarial and property
//! tests run without sockets), and a [`Response`] writer.
//!
//! Differences from the real `tiny_http`: connections are **one request
//! per connection** — every response carries `Connection: close` and the
//! stream is shut down after responding. That keeps the server loop
//! trivially thread-safe with zero connection bookkeeping; HTTP/1.1
//! clients (curl, browsers, load balancers) handle it transparently. The
//! parser itself reads sequential requests off one stream correctly
//! (tested for pipelining), so keep-alive can be added without touching
//! it. Request bodies are read eagerly under [`Limits`] rather than
//! streamed, and `Transfer-Encoding: chunked` is rejected with `501`
//! (every client this serves can send `Content-Length`).
//!
//! `Expect: 100-continue` is honored: the interim response is written
//! after the head parses and before the body is read, so `curl -d` on a
//! large JSON body does not stall.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounds enforced while parsing a request; every limit violated maps to
/// a specific [`ParseError`] and HTTP status.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most accepted header lines.
    pub max_headers: usize,
    /// Largest accepted declared body, bytes.
    pub max_body: usize,
    /// Per-connection socket read timeout (a stalled or slow-loris client
    /// errors out instead of pinning an acceptor thread forever).
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Why a byte stream failed to parse as an HTTP/1.1 request.
#[derive(Debug)]
pub enum ParseError {
    /// The stream ended mid-request (inside the head or before
    /// `Content-Length` bytes of body arrived).
    Truncated,
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine(String),
    /// The version is not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion(String),
    /// A header line has no `:` separator or an empty field name.
    BadHeader(String),
    /// More header lines than [`Limits::max_headers`].
    TooManyHeaders,
    /// A request or header line longer than its limit.
    LineTooLong,
    /// `Content-Length` is not a plain non-negative integer, or the
    /// request carries several conflicting values.
    BadContentLength(String),
    /// The declared body exceeds [`Limits::max_body`].
    BodyTooLarge {
        /// Bytes the client declared.
        declared: u64,
        /// The configured cap.
        max: usize,
    },
    /// `Transfer-Encoding` present (chunked bodies are not supported).
    UnsupportedTransferEncoding,
    /// The underlying reader failed.
    Io(io::Error),
}

impl ParseError {
    /// The HTTP status an error response for this failure should carry.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Truncated | ParseError::Io(_) => 400,
            ParseError::BadRequestLine(_) | ParseError::BadHeader(_) => 400,
            ParseError::BadContentLength(_) => 400,
            ParseError::UnsupportedVersion(_) => 505,
            ParseError::TooManyHeaders | ParseError::LineTooLong => 431,
            ParseError::BodyTooLarge { .. } => 413,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => f.write_str("truncated request"),
            ParseError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            ParseError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            ParseError::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            ParseError::TooManyHeaders => f.write_str("too many headers"),
            ParseError::LineTooLong => f.write_str("request or header line too long"),
            ParseError::BadContentLength(v) => write!(f, "bad content-length {v:?}"),
            ParseError::BodyTooLarge { declared, max } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {max}-byte cap"
                )
            }
            ParseError::UnsupportedTransferEncoding => {
                f.write_str("transfer-encoding is not supported; send content-length")
            }
            ParseError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ParseError::Truncated
        } else {
            ParseError::Io(e)
        }
    }
}

/// An HTTP request method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `HEAD`
    Head,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
    /// `OPTIONS`
    Options,
    /// `PATCH`
    Patch,
    /// Anything else, verbatim.
    NonStandard(String),
}

impl Method {
    fn parse(raw: &str) -> Method {
        match raw {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            "PATCH" => Method::Patch,
            other => Method::NonStandard(other.to_string()),
        }
    }

    /// The method token as sent on the wire.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Patch => "PATCH",
            Method::NonStandard(s) => s,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One request or response header (`field: value`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Field name as received (case preserved; compare case-insensitively).
    pub field: String,
    /// Trimmed value.
    pub value: String,
}

/// A fully parsed request, independent of any socket — what
/// [`parse_request`] yields and what [`Request`] wraps.
#[derive(Debug, Clone)]
pub struct ParsedRequest {
    /// The request method.
    pub method: Method,
    /// The request target exactly as sent (path + optional query).
    pub url: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http_11: bool,
    /// Headers in received order.
    pub headers: Vec<Header>,
    /// The body (exactly `Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl ParsedRequest {
    /// First value of `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|h| h.field.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
    }
}

/// The head of a request: everything before the body.
struct Head {
    method: Method,
    url: String,
    http_11: bool,
    headers: Vec<Header>,
    content_length: usize,
    expect_continue: bool,
}

/// Reads one `\n`-terminated line, tolerating both CRLF and bare LF.
/// `Ok(None)` on clean EOF before any byte; [`ParseError::Truncated`] on
/// EOF mid-line; [`ParseError::LineTooLong`] past `max` bytes (detected
/// without buffering the excess).
fn read_line<R: BufRead>(r: &mut R, max: usize) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if available.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ParseError::Truncated)
            };
        }
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (&available[..=i], true),
            None => (available, false),
        };
        if line.len() + chunk.len() > max + 2 {
            // +2: allow the terminator itself past the limit check.
            return Err(ParseError::LineTooLong);
        }
        line.extend_from_slice(chunk);
        let n = chunk.len();
        r.consume(n);
        if done {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > max {
                return Err(ParseError::LineTooLong);
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|e| ParseError::BadHeader(format!("non-UTF-8 bytes: {e}")));
        }
    }
}

/// Parses the request line and headers. `Ok(None)` when the stream ends
/// cleanly before a request starts.
fn read_head<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Option<Head>, ParseError> {
    // RFC 9112 §2.2: tolerate a reasonable number of blank lines before
    // the request line.
    let mut request_line = None;
    for _ in 0..4 {
        match read_line(r, limits.max_request_line)? {
            None => return Ok(None),
            Some(l) if l.is_empty() => continue,
            Some(l) => {
                request_line = Some(l);
                break;
            }
        }
    }
    let Some(request_line) = request_line else {
        return Err(ParseError::BadRequestLine("(blank lines)".to_string()));
    };

    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, url, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(u), Some(v), None) => (m, u, v),
        _ => return Err(ParseError::BadRequestLine(clip(&request_line))),
    };
    let http_11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(ParseError::UnsupportedVersion(clip(other))),
    };

    let mut headers = Vec::new();
    let mut content_length: Option<u64> = None;
    let mut expect_continue = false;
    loop {
        let line = match read_line(r, limits.max_header_line)? {
            None => return Err(ParseError::Truncated),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let Some(colon) = line.find(':') else {
            return Err(ParseError::BadHeader(clip(&line)));
        };
        let field = line[..colon].trim();
        let value = line[colon + 1..].trim();
        if field.is_empty() || field.contains(' ') {
            return Err(ParseError::BadHeader(clip(&line)));
        }
        if field.eq_ignore_ascii_case("content-length") {
            let parsed = parse_content_length(value)?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(ParseError::BadContentLength(clip(value)));
            }
            content_length = Some(parsed);
        } else if field.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        } else if field.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
        headers.push(Header {
            field: field.to_string(),
            value: value.to_string(),
        });
    }

    let declared = content_length.unwrap_or(0);
    if declared > limits.max_body as u64 {
        return Err(ParseError::BodyTooLarge {
            declared,
            max: limits.max_body,
        });
    }
    Ok(Some(Head {
        method: Method::parse(method),
        url: url.to_string(),
        http_11,
        headers,
        content_length: declared as usize,
        expect_continue,
    }))
}

/// Strict `Content-Length` parse: plain ASCII digits only (no sign, no
/// whitespace beyond the header-value trim, no hex).
fn parse_content_length(value: &str) -> Result<u64, ParseError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::BadContentLength(clip(value)));
    }
    value
        .parse::<u64>()
        .map_err(|_| ParseError::BadContentLength(clip(value)))
}

/// Reads exactly the declared body.
fn read_body<R: BufRead>(r: &mut R, len: usize) -> Result<Vec<u8>, ParseError> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Clips a string for inclusion in an error message.
fn clip(s: &str) -> String {
    const MAX: usize = 80;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// Parses one full request (head + body) off `reader`.
///
/// Returns `Ok(None)` on clean EOF before a request starts. Reads exactly
/// one request's bytes, so calling it again on the same reader yields the
/// next pipelined request — the pipelining tests drive exactly this.
///
/// # Errors
///
/// A [`ParseError`] naming what was malformed, truncated, or over limit.
pub fn parse_request<R: BufRead>(
    reader: &mut R,
    limits: &Limits,
) -> Result<Option<ParsedRequest>, ParseError> {
    let Some(head) = read_head(reader, limits)? else {
        return Ok(None);
    };
    let body = read_body(reader, head.content_length)?;
    Ok(Some(ParsedRequest {
        method: head.method,
        url: head.url,
        http_11: head.http_11,
        headers: head.headers,
        body,
    }))
}

/// An HTTP response: status, extra headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<Header>,
    body: Vec<u8>,
}

impl Response {
    /// An empty-bodied response with `status`.
    pub fn empty(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `200` response with a `text/plain; charset=utf-8` string body.
    pub fn from_string(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            headers: vec![Header {
                field: "Content-Type".to_string(),
                value: "text/plain; charset=utf-8".to_string(),
            }],
            body: body.into().into_bytes(),
        }
    }

    /// A `200` response with a raw byte body (no content type).
    pub fn from_data(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Replaces the status code.
    pub fn with_status_code(mut self, status: u16) -> Response {
        self.status = status;
        self
    }

    /// Adds a header, replacing any existing value of the same field.
    pub fn with_header(mut self, field: impl Into<String>, value: impl Into<String>) -> Response {
        let field = field.into();
        self.headers
            .retain(|h| !h.field.eq_ignore_ascii_case(&field));
        self.headers.push(Header {
            field,
            value: value.into(),
        });
        self
    }

    /// The status code.
    pub fn status_code(&self) -> u16 {
        self.status
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Writes the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the writer's errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for h in &self.headers {
            write!(w, "{}: {}\r\n", h.field, h.value)?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The standard reason phrase for the status codes this shim emits.
fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

/// One accepted, fully parsed request, holding the connection it arrived
/// on; [`respond`](Request::respond) consumes it and closes the stream.
#[derive(Debug)]
pub struct Request {
    parsed: ParsedRequest,
    stream: TcpStream,
}

impl Request {
    /// The request method.
    pub fn method(&self) -> &Method {
        &self.parsed.method
    }

    /// The request target exactly as sent (path + optional query).
    pub fn url(&self) -> &str {
        &self.parsed.url
    }

    /// Headers in received order.
    pub fn headers(&self) -> &[Header] {
        &self.parsed.headers
    }

    /// First value of `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.parsed.header(name)
    }

    /// The request body.
    pub fn body(&self) -> &[u8] {
        &self.parsed.body
    }

    /// Writes `response` and closes the connection.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (the connection is dropped either
    /// way).
    pub fn respond(mut self, response: Response) -> io::Result<()> {
        let out = response.write_to(&mut self.stream);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        out
    }
}

/// A blocking HTTP/1.1 server: a bound listener plus parse limits.
///
/// [`recv`](Server::recv) takes `&self`, so one `Server` can be shared
/// across acceptor threads (`Arc<Server>`); each call accepts one
/// connection and parses one request. Malformed requests are answered
/// with the matching 4xx/5xx directly and reported as `Ok(None)`, so the
/// accept loop never dies to a misbehaving client.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    limits: Limits,
}

impl Server {
    /// Binds to `addr` with default [`Limits`].
    ///
    /// # Errors
    ///
    /// Bind/listen failures.
    pub fn http(addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::with_limits(addr, Limits::default())
    }

    /// Binds to `addr` with explicit [`Limits`].
    ///
    /// # Errors
    ///
    /// Bind/listen failures.
    pub fn with_limits(addr: impl ToSocketAddrs, limits: Limits) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            limits,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts one connection and parses one request.
    ///
    /// `Ok(None)` when the connection produced no servable request: it
    /// closed cleanly without sending one (how [`ServerHandle`-style
    /// shutdowns] unblock acceptors), or it was malformed and the error
    /// response was already written. The caller just loops.
    ///
    /// [`ServerHandle`-style shutdowns]: Server::recv
    ///
    /// # Errors
    ///
    /// Listener-level failures only (accept errors); per-connection I/O
    /// problems are absorbed as `Ok(None)`.
    pub fn recv(&self) -> io::Result<Option<Request>> {
        let (stream, _peer) = self.listener.accept()?;
        let _ = stream.set_read_timeout(Some(self.limits.read_timeout));
        let _ = stream.set_nodelay(true);
        let read = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return Ok(None),
        };
        let mut reader = BufReader::new(read);
        let head = match read_head(&mut reader, &self.limits) {
            Ok(Some(head)) => head,
            Ok(None) => return Ok(None),
            Err(e) => {
                respond_parse_error(stream, &e);
                return Ok(None);
            }
        };
        if head.expect_continue && head.content_length > 0 {
            let mut w = &stream;
            if w.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .and_then(|()| w.flush())
                .is_err()
            {
                return Ok(None);
            }
        }
        match read_body(&mut reader, head.content_length) {
            Ok(body) => Ok(Some(Request {
                parsed: ParsedRequest {
                    method: head.method,
                    url: head.url,
                    http_11: head.http_11,
                    headers: head.headers,
                    body,
                },
                stream,
            })),
            Err(e) => {
                respond_parse_error(stream, &e);
                Ok(None)
            }
        }
    }

    /// An iterator of valid requests: loops [`recv`](Server::recv),
    /// skipping request-less connections, and ends on a listener error.
    pub fn incoming_requests(&self) -> IncomingRequests<'_> {
        IncomingRequests { server: self }
    }
}

/// Writes the 4xx/5xx for a parse failure, best effort.
fn respond_parse_error(mut stream: TcpStream, e: &ParseError) {
    let response = Response::from_string(format!("{e}\n")).with_status_code(e.status());
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// See [`Server::incoming_requests`].
#[derive(Debug)]
pub struct IncomingRequests<'a> {
    server: &'a Server,
}

impl Iterator for IncomingRequests<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            match self.server.recv() {
                Ok(Some(request)) => return Some(request),
                Ok(None) => continue,
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn parse(bytes: &[u8]) -> Result<Option<ParsedRequest>, ParseError> {
        parse_request(&mut io::Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.url, "/healthz");
        assert!(r.http_11);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let r = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"hello world");
    }

    #[test]
    fn tolerates_bare_lf_and_leading_blank_lines() {
        let r = parse(b"\r\n\nGET / HTTP/1.0\nA: b\n\n").unwrap().unwrap();
        assert!(!r.http_11);
        assert_eq!(r.header("a"), Some("b"));
    }

    #[test]
    fn clean_eof_is_none_truncation_is_an_error() {
        assert!(parse(b"").unwrap().is_none());
        assert!(matches!(parse(b"GET / HT"), Err(ParseError::Truncated)));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(ParseError::Truncated)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Truncated)
        ));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let bytes: &[u8] = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                             GET /b HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(bytes);
        let limits = Limits::default();
        let a = parse_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(a.url, "/a");
        assert_eq!(a.body, b"abc");
        let b = parse_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(b.url, "/b");
        assert_eq!(b.method, Method::Get);
        assert!(parse_request(&mut cursor, &limits).unwrap().is_none());
    }

    #[test]
    fn bad_request_lines_are_rejected() {
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1 extra\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(ParseError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse(b"\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\n\r\nGET / HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
    }

    #[test]
    fn bad_headers_are_rejected() {
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\n: empty-field\r\n\r\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbad field: x\r\n\r\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nA: \xff\xfe\r\n\r\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_content_lengths_are_rejected() {
        for bad in ["abc", "-1", "1e3", "0x10", "10 20", "+5", ""] {
            let req = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            assert!(
                matches!(parse(req.as_bytes()), Err(ParseError::BadContentLength(_))),
                "content-length {bad:?} must be rejected"
            );
        }
        // Conflicting duplicates are rejected; agreeing duplicates pass.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd"),
            Err(ParseError::BadContentLength(_))
        ));
        let ok = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
            .unwrap()
            .unwrap();
        assert_eq!(ok.body, b"abc");
    }

    #[test]
    fn limits_are_enforced() {
        let limits = Limits {
            max_request_line: 64,
            max_header_line: 32,
            max_headers: 4,
            max_body: 16,
            ..Limits::default()
        };
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert!(matches!(
            parse_request(&mut io::Cursor::new(long_target.as_bytes()), &limits),
            Err(ParseError::LineTooLong)
        ));
        let long_header = format!("GET / HTTP/1.1\r\nA: {}\r\n\r\n", "v".repeat(100));
        assert!(matches!(
            parse_request(&mut io::Cursor::new(long_header.as_bytes()), &limits),
            Err(ParseError::LineTooLong)
        ));
        let many = format!("GET / HTTP/1.1\r\n{}\r\n", "A: b\r\n".repeat(10));
        assert!(matches!(
            parse_request(&mut io::Cursor::new(many.as_bytes()), &limits),
            Err(ParseError::TooManyHeaders)
        ));
        assert!(matches!(
            parse_request(
                &mut io::Cursor::new(&b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"[..]),
                &limits
            ),
            Err(ParseError::BodyTooLarge { declared: 1000, .. })
        ));
        // The cap guards the *declared* length: a huge number that would
        // overflow a naive allocation is rejected before any body read.
        let huge = b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        assert!(matches!(
            parse_request(&mut io::Cursor::new(&huge[..]), &limits),
            Err(ParseError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn response_writes_canonical_http11() {
        let mut out = Vec::new();
        Response::from_string("hi")
            .with_status_code(404)
            .with_header("X-Test", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Type: text/plain; charset=utf-8\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n\r\nhi"));
        // with_header replaces same-field values.
        let r = Response::empty(204)
            .with_header("A", "1")
            .with_header("a", "2");
        assert_eq!(r.headers.len(), 1);
        assert_eq!(r.headers[0].value, "2");
    }

    #[test]
    fn server_round_trips_over_a_real_socket() {
        use std::net::TcpStream;
        let server = Server::http("127.0.0.1:0").unwrap();
        let addr = server.server_addr();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 4\r\n\r\nping")
                .unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        let request = server.recv().unwrap().expect("a request");
        assert_eq!(request.url(), "/echo");
        assert_eq!(request.body(), b"ping");
        let body = format!("pong:{}", String::from_utf8_lossy(request.body()));
        request.respond(Response::from_string(body)).unwrap();
        let raw = client.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(raw.ends_with("pong:ping"));
    }

    #[test]
    fn malformed_connections_get_an_error_response_and_recv_continues() {
        use std::net::TcpStream;
        let server = Server::http("127.0.0.1:0").unwrap();
        let addr = server.server_addr();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"NOT AN HTTP REQUEST AT ALL\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        assert!(server.recv().unwrap().is_none(), "bad request absorbed");
        let raw = client.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{raw}");
    }
}
