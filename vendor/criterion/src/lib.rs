//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset the workspace's benches use: [`Criterion`],
//! `benchmark_group` with `sample_size`/`measurement_time`,
//! `bench_function`, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It performs real wall-clock measurement
//! (warmup iteration, then samples until the sample budget or measurement
//! time is exhausted) and prints a mean/min/max line per benchmark.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON line per
//! benchmark: `{"group":..,"bench":..,"samples":..,"mean_s":..,"min_s":..,
//! "max_s":..}` — used by the repo's `BENCH_baseline.json` workflow.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A group of related benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measures one closure under this group's configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        // Warmup: one untimed run (also forces lazy init paths).
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let budget_start = Instant::now();
        while samples.len() < self.sample_size
            && (samples.is_empty() || budget_start.elapsed() < self.measurement_time)
        {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64());
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "bench {}/{}: mean {:.6}s min {:.6}s max {:.6}s ({} samples)",
            self.name,
            id,
            mean,
            min,
            max,
            samples.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"samples\":{},\"mean_s\":{:.6},\"min_s\":{:.6},\"max_s\":{:.6}}}",
                    self.name,
                    id,
                    samples.len(),
                    mean,
                    min,
                    max
                );
            }
        }
        self
    }

    /// Ends the group (kept for API compatibility; all reporting is eager).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; accumulates the timed region.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` (a single timed call in this shim — the
    /// workloads in this repo are all well above timer resolution).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
