//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides exactly the surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), integer range sampling
//! ([`Rng::gen_range`]), and Fisher–Yates shuffling
//! ([`seq::SliceRandom::shuffle`]). The generator is SplitMix64, which is
//! statistically solid for retry shuffles and scenario generation; it is
//! NOT the real `rand` ChaCha stream, so seeds do not reproduce upstream
//! `rand` sequences.

/// Sources of randomness: a stream of `u64`s plus derived helpers.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end.checked_sub(range.start).expect("non-empty range");
        assert!(span > 0, "cannot sample from an empty range");
        // Lemire-style widening multiply avoids modulo bias well enough for
        // non-cryptographic use: take the high bits of x * span.
        let x = self.next_u64();
        range.start + (((x as u128 * span as u128) >> 64) as u64)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Construction of RNGs from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
