//! Reproduction of "Co-Design of Topology, Scheduling, and Path Planning in Automated Warehouses" (DATE 2023).
//!
//! This umbrella crate re-exports the workspace crates; see `wsp-core` for the pipeline.

#![warn(missing_docs)]

pub use wsp_core as core;
pub use wsp_model as model;
pub use wsp_server as server;
pub use wsp_sim as sim;
