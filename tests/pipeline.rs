//! Cross-crate integration tests: the full methodology on the paper's
//! evaluation maps, cross-engine agreement, and ours-vs-baseline
//! cross-validation through the shared plan checker.

use wsp_core::{solve, PipelineOptions, WspInstance};
use wsp_flow::{synthesize_flow, synthesize_flow_relaxed, FlowEngine, FlowSynthesisOptions};
use wsp_mapf::{InnerSolver, IteratedPlanner, MapfProblem, PrioritizedPlanner};
use wsp_model::{PlanChecker, VertexId};

#[test]
fn sorting_center_integer_pipeline_end_to_end() {
    let map = wsp_maps::sorting_center().expect("map builds");
    let workload = map.uniform_workload(80);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, 3_600);
    let report = solve(&instance, &PipelineOptions::default()).expect("pipeline solves");
    assert!(report.stats.total_delivered() >= 80);
    assert_eq!(report.outcome.missed_advances, 0, "Property 4.1");
    // The flow set's promised rate is realized (after warmup).
    assert!(report.cycles.deliveries_per_period() >= 36);
}

#[test]
fn paper_and_layered_engines_agree_on_team_size() {
    let map = wsp_maps::sorting_center().expect("map builds");
    // A small workload keeps the per-product paper encoding tractable.
    let mut workload = wsp_model::Workload::zeros(36);
    for k in 0..6u32 {
        workload.set(wsp_model::ProductId(k), 5);
    }
    let layered = synthesize_flow(
        &map.warehouse,
        &map.traffic,
        &workload,
        3_600,
        &FlowSynthesisOptions::default(),
    )
    .expect("layered solves");
    let paper = synthesize_flow(
        &map.warehouse,
        &map.traffic,
        &workload,
        3_600,
        &FlowSynthesisOptions {
            engine: FlowEngine::PaperIlp,
            ..FlowSynthesisOptions::default()
        },
    )
    .expect("paper engine solves");
    assert_eq!(layered.total_edge_flow(), paper.total_edge_flow());
    assert_eq!(
        layered.total_deliveries_per_period(),
        paper.total_deliveries_per_period()
    );
}

#[test]
fn relaxed_lower_bounds_integer_on_fulfillment_1() {
    let map = wsp_maps::fulfillment_center_1().expect("map builds");
    let workload = map.uniform_workload(550);
    let relaxed = synthesize_flow_relaxed(
        &map.warehouse,
        &map.traffic,
        &workload,
        3_600,
        &FlowSynthesisOptions::default(),
    )
    .expect("strict relaxed feasible at 550 units");
    assert!(relaxed.objective > 0.0);
}

#[test]
fn capacity_bound_is_the_feasibility_boundary() {
    // Fulfillment 2's Table I workloads exceed the Property 4.1 throughput
    // ceiling (DESIGN.md §3.7): strict mode must reject them, paper mode
    // (no capacity assumption) must accept them.
    let map = wsp_maps::fulfillment_center_2().expect("map builds");
    let workload = map.uniform_workload(1_200);
    let strict = synthesize_flow_relaxed(
        &map.warehouse,
        &map.traffic,
        &workload,
        3_600,
        &FlowSynthesisOptions::default(),
    );
    assert!(
        matches!(strict, Err(wsp_flow::FlowError::Infeasible { .. })),
        "strict mode should hit the capacity boundary"
    );
    let paper_mode = synthesize_flow_relaxed(
        &map.warehouse,
        &map.traffic,
        &workload,
        3_600,
        &FlowSynthesisOptions {
            skip_capacity: true,
            ..FlowSynthesisOptions::default()
        },
    );
    assert!(
        paper_mode.is_ok(),
        "paper mode should solve: {paper_mode:?}"
    );
}

#[test]
fn baseline_realizes_pipeline_itineraries_on_small_instance() {
    // Cross-validation: give the search-based baseline the itineraries our
    // plan realized, and check its solution with the same plan checker
    // machinery (conflict validation).
    let map = wsp_maps::sorting_center().expect("map builds");
    let workload = map.uniform_workload(10);
    let instance = WspInstance::new(map.warehouse.clone(), map.traffic.clone(), workload, 3_600);
    let report = solve(&instance, &PipelineOptions::default()).expect("pipeline solves");

    // First waypoint of a small agent subset — the full team is exactly
    // where search-based planning stops scaling (the paper's point), so
    // the cross-validation sticks to a tractable slice with distinct
    // waypoints.
    let plan = &report.outcome.plan;
    let mut starts: Vec<VertexId> = Vec::new();
    let mut goals: Vec<Vec<VertexId>> = Vec::new();
    let mut used = std::collections::HashSet::new();
    for a in 0..plan.agent_count() {
        let traj = plan.trajectory(a);
        let waypoint = traj
            .windows(2)
            .find(|w| w[0].carry != w[1].carry)
            .map(|w| w[1].at)
            .unwrap_or(traj.last().expect("non-empty").at);
        let start = plan.state(a, 0).expect("state").at;
        if used.insert(waypoint) && used.insert(start) {
            starts.push(start);
            goals.push(vec![waypoint]);
        }
        if starts.len() == 6 {
            break;
        }
    }

    let problem = MapfProblem::new(map.warehouse.graph(), starts, goals).with_max_time(4_000);
    let planner = IteratedPlanner {
        inner: InnerSolver::Prioritized(PrioritizedPlanner::default()),
        max_iterations: 16,
    };
    let solution = planner.solve(&problem).expect("baseline solves one round");
    assert!(solution.validate(map.warehouse.graph()).is_empty());
}

#[test]
fn realized_plans_verify_against_independent_checker() {
    let map = wsp_maps::sorting_center().expect("map builds");
    let workload = map.uniform_workload(40);
    let instance = WspInstance::new(map.warehouse.clone(), map.traffic, workload.clone(), 3_600);
    let report = solve(&instance, &PipelineOptions::default()).expect("pipeline solves");
    let checker = PlanChecker::new(&map.warehouse);
    let stats = checker
        .check_services(&report.outcome.plan, &workload)
        .expect("independent checker accepts the plan");
    assert_eq!(stats.agents, report.outcome.agents);
}
