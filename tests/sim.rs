//! Lifelong-simulation regression tests: golden-file pins of two
//! fixed-seed scenarios (the paper-scale sorting center and a ~10k-vertex
//! `scaled_warehouse`), plus an end-to-end smoke over the full engine.
//!
//! The golden files under `tests/golden/` store the canonical
//! `SimReport::to_json` rendering — every field an integer, byte-identical
//! across debug/release builds and repair thread counts. When an
//! intentional engine change shifts the numbers, regenerate with:
//!
//! ```text
//! WSP_BLESS=1 cargo test --test sim
//! ```
//!
//! and review the golden diff like any other code change. On mismatch the
//! test also writes the actual rendering to `target/golden-actual/` so CI
//! can upload it as an artifact.

use std::path::PathBuf;

use wsp_bench::{sim_scenario_paper, sim_scenario_scaled};
use wsp_sim::Simulation;

/// Directory-parameterized core of [`golden_check`], so the bless and
/// mismatch paths are testable against temp directories. Creates both
/// directories as needed — a fresh checkout has no `target/golden-actual`,
/// and `WSP_BLESS=1` on a pruned tree must not fail on a missing
/// `tests/golden` either.
fn golden_check_at(
    golden_dir: &std::path::Path,
    actual_dir: &std::path::Path,
    name: &str,
    actual: &str,
    bless: bool,
) -> Result<(), String> {
    let golden = golden_dir.join(format!("{name}.json"));
    if bless {
        std::fs::create_dir_all(golden_dir)
            .map_err(|e| format!("create golden dir {}: {e}", golden_dir.display()))?;
        std::fs::write(&golden, actual)
            .map_err(|e| format!("write golden {}: {e}", golden.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(&golden).map_err(|e| {
        format!(
            "missing golden file {} ({e}); regenerate with WSP_BLESS=1 cargo test --test sim",
            golden.display()
        )
    })?;
    if actual != expected {
        std::fs::create_dir_all(actual_dir)
            .map_err(|e| format!("create actual dir {}: {e}", actual_dir.display()))?;
        let out = actual_dir.join(format!("{name}.json"));
        std::fs::write(&out, actual).map_err(|e| format!("write actual {}: {e}", out.display()))?;
        return Err(format!(
            "golden mismatch for {name}: expected {}, actual written to {}\n\
             (intentional change? review the diff, then WSP_BLESS=1 cargo test --test sim)",
            golden.display(),
            out.display()
        ));
    }
    Ok(())
}

fn golden_check(name: &str, actual: &str) {
    let golden_dir: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden"]
        .iter()
        .collect();
    let actual_dir: PathBuf = [env!("CARGO_MANIFEST_DIR"), "target", "golden-actual"]
        .iter()
        .collect();
    let bless = std::env::var_os("WSP_BLESS").is_some();
    if let Err(msg) = golden_check_at(&golden_dir, &actual_dir, name, actual, bless) {
        panic!("{msg}");
    }
}

/// Regression test for the bless/mismatch plumbing itself: both paths
/// must create their target directories on a fresh checkout (the actual
/// dir under `target/` never exists in CI until a mismatch writes it).
#[test]
fn golden_check_creates_missing_directories() {
    let root: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "target",
        "golden-selftest",
        concat!("pid-", env!("CARGO_PKG_VERSION")),
    ]
    .iter()
    .collect();
    let _ = std::fs::remove_dir_all(&root);
    let golden_dir = root.join("golden");
    let actual_dir = root.join("actual");

    // Bless into a directory that does not exist yet.
    golden_check_at(&golden_dir, &actual_dir, "g", "{\"x\": 1}\n", true).expect("bless creates");
    // Match against the blessed file.
    golden_check_at(&golden_dir, &actual_dir, "g", "{\"x\": 1}\n", false).expect("match passes");
    // Mismatch must create the actual dir and write the rendering.
    let err = golden_check_at(&golden_dir, &actual_dir, "g", "{\"x\": 2}\n", false)
        .expect_err("mismatch reported");
    assert!(err.contains("golden mismatch"), "{err}");
    let written = std::fs::read_to_string(actual_dir.join("g.json")).expect("actual written");
    assert_eq!(written, "{\"x\": 2}\n");
    // Missing golden without bless is an error, not a panic.
    let err = golden_check_at(&golden_dir, &actual_dir, "absent", "{}", false)
        .expect_err("missing golden reported");
    assert!(err.contains("missing golden file"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn golden_sorting_center_lifelong() {
    let scenario = sim_scenario_paper(2_000);
    let mut sim = Simulation::from_cycles(
        &scenario.instance,
        scenario.cycles.clone(),
        scenario.config(800),
    )
    .expect("paper scenario simulates");
    let report = sim.run().expect("runs to the tick budget");
    assert!(report.counters.conserved());
    assert!(report.counters.completed > 0, "{report}");
    golden_check("sim_sorting_center", &report.to_json());
}

#[test]
fn golden_scaled_warehouse_10k_lifelong() {
    let scenario = sim_scenario_scaled(31, 320, 400, 5);
    assert!(
        scenario.instance.warehouse.graph().vertex_count() >= 10_000,
        "scenario must stay production-scale"
    );
    let mut sim = Simulation::from_cycles(
        &scenario.instance,
        scenario.cycles.clone(),
        scenario.config(600),
    )
    .expect("scaled scenario simulates");
    let report = sim.run().expect("runs to the tick budget");
    assert!(report.counters.conserved());
    golden_check("sim_scaled_warehouse_10k", &report.to_json());
}

/// The same production-scale scenario under the auction assignment
/// policy: queued tasks are matched to idle agents instead of waiting for
/// a cycle to happen past their pickup, so the completed count must be a
/// different (far larger) number than the Static golden's — pinned in its
/// own golden file.
#[test]
fn golden_scaled_warehouse_10k_auction() {
    let scenario = sim_scenario_scaled(31, 320, 400, 5);
    let mut config = scenario.config(600);
    config.assign.policy = wsp_sim::AssignPolicy::Auction;
    let mut sim = Simulation::from_cycles(&scenario.instance, scenario.cycles.clone(), config)
        .expect("scaled scenario simulates");
    let report = sim.run().expect("runs to the tick budget");
    assert!(report.counters.conserved());
    assert!(
        report.counters.completed > 0,
        "auction must complete work on the production map: {report}"
    );
    assert!(report.counters.assignments_made > 0);
    golden_check("sim_scaled_warehouse_10k_auction", &report.to_json());
}

/// Nightly elision guard: 200k simulated ticks on the ~11k-vertex scaled
/// warehouse must fit a generous wall-clock budget. The event engine covers
/// quiescent stretches in O(events), so a regression that silently falls
/// back to per-tick sweeps blows the budget by an order of magnitude and
/// fails loudly. Run with `cargo test --release --test sim -- --ignored`.
#[test]
#[ignore = "nightly: 200k-tick release-profile smoke with a wall-clock budget"]
fn nightly_event_engine_200k_tick_smoke() {
    const TICKS: u64 = 200_000;
    const WALL_BUDGET: std::time::Duration = std::time::Duration::from_secs(120);
    let scenario = sim_scenario_scaled(31, 320, 400, 5);
    assert!(
        scenario.instance.warehouse.graph().vertex_count() >= 10_000,
        "scenario must stay production-scale"
    );
    let mut sim = Simulation::from_cycles(
        &scenario.instance,
        scenario.cycles.clone(),
        scenario.config(TICKS),
    )
    .expect("scaled scenario simulates");
    let start = std::time::Instant::now();
    let report = sim.run().expect("runs to the tick budget");
    let elapsed = start.elapsed();
    assert!(report.counters.conserved());
    assert_eq!(report.counters.ticks, TICKS);
    assert!(
        report.counters.ticks_elided > 0,
        "quiescent stretches should be elided on this instance"
    );
    println!(
        "200k-tick smoke: {elapsed:?} wall, {} ticks elided, {} events",
        report.counters.ticks_elided, report.counters.events_processed
    );
    assert!(
        elapsed < WALL_BUDGET,
        "200k simulated ticks took {elapsed:?}, budget {WALL_BUDGET:?} — \
         elision regression?"
    );
}

#[test]
fn lifelong_smoke_full_engine() {
    // A quick end-to-end pass over every engine feature: pipeline
    // synthesis, zipf stream, stalls, repair, early replans, recording —
    // and the executed plan feasible per the independent checker.
    let map = wsp_maps::sorting_center().expect("map builds");
    let mix = map.zipf_workload(300, 1.0, 3);
    let workload = map.uniform_workload(80);
    let warehouse = map.warehouse.clone();
    let instance = wsp_core::WspInstance::new(map.warehouse, map.traffic, workload, 3_600);
    let config = wsp_sim::SimConfig {
        ticks: 300,
        stream: wsp_sim::StreamConfig {
            mix,
            mean_gap: 2,
            seed: 3,
        },
        deviations: wsp_sim::DeviationConfig::stalls(40, 2, 6, 11),
        repair: wsp_sim::RepairConfig {
            enabled: true,
            ..wsp_sim::RepairConfig::default()
        },
        replan_lag: 20,
        record: true,
        ..wsp_sim::SimConfig::default()
    };
    let mut sim =
        Simulation::new(&instance, &wsp_core::PipelineOptions::default(), config).expect("builds");
    let report = sim.run().expect("runs");
    assert!(report.counters.conserved());
    assert!(report.counters.stalls_injected > 0);
    assert!(report.counters.completed > 0);
    let executed = sim.executed_plan().expect("recording on");
    wsp_model::PlanChecker::new(&warehouse)
        .check(executed)
        .expect("deviated execution stays feasible");
}
