//! Umbrella end-to-end guard for the staged pipeline + explorer stack:
//! the staged API must agree with the one-shot `solve`, and a small
//! parallel design search must produce a verified, reproducible winner.

use wsp_core::{solve, Pipeline, PipelineOptions, WspInstance};
use wsp_explore::{evaluate_batch, DesignCandidate, ExploreOptions};
use wsp_maps::SortingCenterParams;
use wsp_traffic::RingOrientation;

fn small_candidates() -> Vec<DesignCandidate> {
    [RingOrientation::Forward, RingOrientation::Reversed]
        .into_iter()
        .flat_map(|orientation| {
            [60usize, 100].into_iter().map(move |max_component_len| {
                DesignCandidate::new(SortingCenterParams {
                    chute_rows: 3,
                    chute_cols: 4,
                    stations: 2,
                    orientation,
                    max_component_len,
                    ..SortingCenterParams::paper()
                })
            })
        })
        .collect()
}

#[test]
fn explore_winner_is_verified_and_reproducible() {
    let candidates = small_candidates();
    let options = ExploreOptions {
        threads: Some(2),
        units: 12,
        t_limit: 1_600,
        ..ExploreOptions::default()
    };
    let outcome = evaluate_batch(&candidates, &options);
    assert_eq!(outcome.reports.len(), 4);
    let best = outcome.best().expect("a small candidate solves");
    let eval = best.outcome.eval().expect("winner solved");
    assert!(eval.delivered >= 12);

    // Re-deriving the winner through both entry points agrees with the
    // batch evaluation (the whole stack is deterministic).
    let map = best.candidate.build().expect("winner rebuilds");
    let workload = map.uniform_workload(options.units);
    let instance = WspInstance::new(map.warehouse, map.traffic, workload, options.t_limit);
    let one_shot = solve(&instance, &PipelineOptions::default()).expect("winner solves");
    let staged = Pipeline::new()
        .run(&instance, &PipelineOptions::default())
        .expect("winner solves staged");
    assert_eq!(one_shot.objective(), staged.objective());
    assert_eq!(one_shot.objective(), (eval.agents, eval.makespan));
    assert_eq!(staged.flow.synthesis_cost(), eval.synthesis_cost);
}
