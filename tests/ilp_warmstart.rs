//! Warm-started vs cold-started branch-and-bound on the paper instances:
//! disabling [`wsp_lp::IlpOptions::warm_start`] forces every node through
//! a cold two-phase solve, and the synthesized designs must reach
//! identical objective values either way. (The per-node LP *vertices* may
//! differ between the two configurations; the optimum may not.)

use wsp_flow::{synthesize_flow, FlowSynthesisOptions};
use wsp_lp::IlpOptions;

#[test]
fn warm_and_cold_synthesis_agree_on_the_sorting_center() {
    let map = wsp_maps::sorting_center().expect("sorting center builds");
    for units in [40u64, 160] {
        let workload = map.uniform_workload(units);
        let warm = synthesize_flow(
            &map.warehouse,
            &map.traffic,
            &workload,
            3_600,
            &FlowSynthesisOptions::default(),
        )
        .expect("warm synthesis solves");
        let cold = synthesize_flow(
            &map.warehouse,
            &map.traffic,
            &workload,
            3_600,
            &FlowSynthesisOptions {
                ilp: IlpOptions {
                    warm_start: false,
                    ..IlpOptions::default()
                },
                ..FlowSynthesisOptions::default()
            },
        )
        .expect("cold synthesis solves");
        assert_eq!(
            warm.total_edge_flow(),
            cold.total_edge_flow(),
            "units {units}: warm and cold optima must match"
        );
        assert_eq!(
            warm.total_deliveries_per_period(),
            cold.total_deliveries_per_period(),
            "units {units}"
        );
    }
}

#[test]
fn warm_and_cold_agree_on_a_sorting_center_variant() {
    // A second point of the paper family (different station count and
    // chute grid than the paper defaults) exercises a different
    // constraint skeleton than the base instance. (The fulfillment
    // centers are deliberately absent: their *integer* solves take
    // minutes by design and are not a test-tier workload — see the
    // `table1` bench notes.)
    let map = wsp_maps::sorting_center_variant(&wsp_maps::SortingCenterParams {
        chute_rows: 3,
        chute_cols: 4,
        stations: 4,
        ..wsp_maps::SortingCenterParams::paper()
    })
    .expect("variant builds");
    let workload = map.uniform_workload(48);
    let warm = synthesize_flow(
        &map.warehouse,
        &map.traffic,
        &workload,
        2_400,
        &FlowSynthesisOptions::default(),
    )
    .expect("warm synthesis solves");
    let cold = synthesize_flow(
        &map.warehouse,
        &map.traffic,
        &workload,
        2_400,
        &FlowSynthesisOptions {
            ilp: IlpOptions {
                warm_start: false,
                ..IlpOptions::default()
            },
            ..FlowSynthesisOptions::default()
        },
    )
    .expect("cold synthesis solves");
    assert_eq!(warm.total_edge_flow(), cold.total_edge_flow());
    assert_eq!(
        warm.total_deliveries_per_period(),
        cold.total_deliveries_per_period()
    );
}
