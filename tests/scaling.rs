//! End-to-end scale guard: the MAPF stack must plan on a ≥100k-vertex
//! `scaled_warehouse` instance, with reservation-table memory at least an
//! order of magnitude below the dense O(horizon × vertices) baseline.
//!
//! Hauls here are deliberately short (same-region shelf runs) so the test
//! stays fast in debug builds; the release-mode cross-warehouse sweep
//! lives in `wsp-bench` (`benches/scaling.rs`, `BENCH_scaling.json`).

use wsp_mapf::{MapfProblem, PrioritizedPlanner, SpaceTimeAstar};
use wsp_maps::scaled_warehouse;
use wsp_model::VertexId;

#[test]
fn prioritized_mapf_solves_on_a_100k_vertex_warehouse() {
    let map = scaled_warehouse(101, 1000, 3, 3).expect("scaled map builds");
    let graph = map.warehouse.graph();
    let n = graph.vertex_count();
    assert!(n >= 100_000, "only {n} vertices");
    assert!(map.traffic.is_strongly_connected());

    // Eight agents, each hauling to a shelf-access vertex a few aisles
    // away from its start (row-major stride keeps the pairs in-region).
    let agents = 8usize;
    let access = map.warehouse.shelf_access();
    let stride = access.len() / agents;
    let starts: Vec<VertexId> = (0..agents).map(|i| access[i * stride]).collect();
    let goals: Vec<Vec<VertexId>> = (0..agents).map(|i| vec![access[i * stride + 50]]).collect();

    let planner = PrioritizedPlanner {
        astar: SpaceTimeAstar {
            max_time: 4_096,
            ..SpaceTimeAstar::default()
        },
        ..PrioritizedPlanner::default()
    };
    let problem = MapfProblem::new(graph, starts, goals.clone());
    let (solution, table) = planner.solve_with_table(&problem).expect("solvable");

    assert!(solution.validate(graph).is_empty());
    for (agent, itinerary) in goals.iter().enumerate() {
        assert_eq!(solution.paths[agent].last(), itinerary.last());
    }
    // The scale tentpole: adaptive storage keeps the table at least 10x
    // under the dense layout at this size.
    assert!(
        table.memory_bytes() * 10 < table.dense_equivalent_bytes(),
        "reservation table {} bytes vs dense baseline {}",
        table.memory_bytes(),
        table.dense_equivalent_bytes()
    );
}
